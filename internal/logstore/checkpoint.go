package logstore

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Checkpoint file format. The checkpoint is the serialized mapping
// table plus the replay cursor: generation, active segment, and the
// log offset the table covers. Replay resumes at that offset instead
// of the start of the log, so the checkpoint is purely an accelerator
// — a missing or corrupt one forces a full replay, never wrong data.
//
//	[8]  magic "IBLOGCK1"
//	u64  generation
//	u64  active segment sequence
//	u64  covered log offset in the active segment
//	u64  dataBytes (live + dead payload bytes across the log)
//	u64  object count
//	per object:
//	  u64  file id
//	  u64  logical size
//	  u64  extent count
//	  per extent: u64 off, u64 n, u64 seg, u64 pos, u64 gen
//	u32  crc32c over everything above
//
// Installation is atomic: the bytes go to checkpoint.tmp, that file is
// fsynced, renamed over "checkpoint", and the directory is fsynced. A
// crash at any instant leaves either the old checkpoint or the new one
// — never a readable half of each.
var ckptMagic = [8]byte{'I', 'B', 'L', 'O', 'G', 'C', 'K', '1'}

// checkpointState is a decoded checkpoint.
type checkpointState struct {
	gen       uint64
	seg       uint64
	off       int64
	dataBytes int64
	objects   map[uint64]*object
	liveBytes int64
}

func putU64(b []byte, v uint64) { binary.BigEndian.PutUint64(b, v) }

// encodeCheckpointLocked serializes the mapping table (mu held).
// Objects and their extents are written in sorted order so the bytes —
// and the CRC — are a pure function of the store state.
func (s *LogStore) encodeCheckpointLocked() []byte {
	ids := make([]uint64, 0, len(s.objects))
	for id := range s.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf := make([]byte, 0, 8+5*8+len(ids)*3*8)
	buf = append(buf, ckptMagic[:]...)
	buf = binary.BigEndian.AppendUint64(buf, s.gen)
	buf = binary.BigEndian.AppendUint64(buf, s.active)
	buf = binary.BigEndian.AppendUint64(buf, uint64(s.tail))
	buf = binary.BigEndian.AppendUint64(buf, uint64(s.dataBytes))
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(ids)))
	for _, id := range ids {
		o := s.objects[id]
		buf = binary.BigEndian.AppendUint64(buf, id)
		buf = binary.BigEndian.AppendUint64(buf, uint64(o.size))
		buf = binary.BigEndian.AppendUint64(buf, uint64(len(o.ext)))
		for _, e := range o.ext {
			buf = binary.BigEndian.AppendUint64(buf, uint64(e.off))
			buf = binary.BigEndian.AppendUint64(buf, uint64(e.n))
			buf = binary.BigEndian.AppendUint64(buf, e.seg)
			buf = binary.BigEndian.AppendUint64(buf, uint64(e.pos))
			buf = binary.BigEndian.AppendUint64(buf, e.gen)
		}
	}
	return binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// checkpointLocked installs a checkpoint of the current state (mu
// held): write to the staging file, fsync, rename into place, fsync
// the directory.
func (s *LogStore) checkpointLocked() error {
	start := time.Now()
	buf := s.encodeCheckpointLocked()
	tmp := filepath.Join(s.dir, ckptTmpName)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, ckptName)); err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	s.sinceCkpt = 0
	s.st.checkpoints++
	if s.oc != nil {
		s.oc.checkpoints.Inc()
	}
	if tr := s.cfg.Tracer; tr != nil {
		tr.Span(tr.NewID(), tr.NewID(), 0, "logstore.checkpoint", s.cfg.Scope, start, time.Since(start))
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// loadCheckpoint reads and validates the checkpoint at path. ok is
// false — and the caller falls back to a full replay — when the file
// is missing, truncated, fails its CRC, or is structurally
// inconsistent. It never panics on arbitrary bytes (the malformed-
// checkpoint table test pins this).
func loadCheckpoint(path string) (ck checkpointState, ok bool) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return ck, false
	}
	if len(buf) < 8+5*8+4 || [8]byte(buf[:8]) != ckptMagic {
		return ck, false
	}
	body, trailer := buf[:len(buf)-4], binary.BigEndian.Uint32(buf[len(buf)-4:])
	if crc32.Checksum(body, castagnoli) != trailer {
		return ck, false
	}
	r := body[8:]
	u64 := func() uint64 {
		v := binary.BigEndian.Uint64(r)
		r = r[8:]
		return v
	}
	ck.gen = u64()
	ck.seg = u64()
	ck.off = int64(u64())
	ck.dataBytes = int64(u64())
	n := u64()
	if ck.off < segHeaderLen || ck.dataBytes < 0 || n > uint64(len(r))/(3*8) {
		return checkpointState{}, false
	}
	ck.objects = make(map[uint64]*object, n)
	for range n {
		if len(r) < 3*8 {
			return checkpointState{}, false
		}
		id := u64()
		size := int64(u64())
		nExt := u64()
		if size < 0 || nExt > uint64(len(r))/(5*8) {
			return checkpointState{}, false
		}
		o := &object{size: size, ext: make([]extent, 0, nExt)}
		var prevEnd int64
		for range nExt {
			e := extent{off: int64(u64()), n: int64(u64()), seg: u64(), pos: int64(u64()), gen: u64()}
			if e.off < prevEnd || e.n <= 0 || e.pos < segHeaderLen || e.off+e.n > size {
				return checkpointState{}, false
			}
			prevEnd = e.off + e.n
			o.ext = append(o.ext, e)
			ck.liveBytes += e.n
		}
		if _, dup := ck.objects[id]; dup {
			return checkpointState{}, false
		}
		ck.objects[id] = o
	}
	if len(r) != 0 {
		return checkpointState{}, false
	}
	return ck, true
}
