// Package logstore is the crash-consistent, log-structured object
// store backing pfsnet data servers on an SSD: the durable analogue of
// the paper's on-SSD fragment log and mapping table (PAPER.md §4).
//
// Every write appends one checksummed, length-prefixed record to the
// active log segment; an in-memory mapping table (per-object sorted
// extent index over log offsets) resolves reads. Durability and
// recovery come from three mechanisms (DESIGN §14):
//
//   - Journal replay. Open loads the most recent durable checkpoint
//     (the serialized mapping table) and replays the log suffix past
//     it. The first record that fails to frame or checksum marks the
//     torn tail: the file is truncated there, so a crash mid-append
//     loses at most the record being written — never an acknowledged
//     one, and never a byte of one (records are atomic).
//   - Checkpoints. The mapping table is serialized to a staging file,
//     fsynced, and renamed over the previous checkpoint — atomically —
//     after every CheckpointBytes of appended log, at every clean
//     Close, and once per Open (which also stamps the new generation).
//     A corrupt or missing checkpoint is never trusted: Open falls
//     back to replaying every surviving segment from offset zero,
//     which reconstructs the identical state (the checkpoint is an
//     accelerator, not a source of truth).
//   - Generation stamps. Each Open bumps the store generation and
//     every record carries the generation that appended it. A replayed
//     suffix must carry exactly the checkpoint's generation (full
//     replay: non-decreasing generations); anything else is treated as
//     corruption and truncated. Re-issued writeback after a
//     crash/restart appends a fresh record under the new generation —
//     applying it on top of a survivor of the old one is idempotent
//     (last-writer-wins over identical bytes).
//
// Background compaction rewrites live extents into a fresh segment
// once the dead-byte ratio passes Config.GarbageRatio, then installs a
// checkpoint and deletes the old segment. The union of surviving
// segments replayed in (sequence, offset) order always reproduces the
// store state, whatever instant a crash interrupts compaction at.
//
// The store degrades, never lies: a simulated SSD device failure
// (FailDevice, driven by the fault plan's ssdfail clause) freezes the
// log and serves all subsequent I/O from an in-memory snapshot —
// losing durability and performance, not bytes, per DESIGN §10.
package logstore

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrCrashed reports an operation against a store whose simulated
// process kill (CrashAppend) has already fired: the store is dead
// until the next Open replays the log.
var ErrCrashed = fmt.Errorf("logstore: simulated crash; reopen to recover")

// Config tunes one store instance. The zero value gives usable
// defaults.
type Config struct {
	// CheckpointBytes installs a mapping-table checkpoint after this
	// many appended log bytes (default 4 MB; negative disables periodic
	// checkpoints — Open and clean Close still install one).
	CheckpointBytes int64
	// GarbageRatio triggers background compaction when
	// dead bytes / total data bytes exceeds it (default 0.5; must be
	// in (0, 1)).
	GarbageRatio float64
	// CompactMinBytes suppresses compaction below this much appended
	// data, so tiny stores don't churn (default 1 MB).
	CompactMinBytes int64
	// NoCompactor disables the background compaction goroutine; tests
	// and the recovery harness call Compact explicitly.
	NoCompactor bool
	// Obs, when set, receives "logstore.*" metrics (appends, log/live
	// bytes, checkpoints, replays, truncated tails, compaction runs).
	Obs *obs.Registry
	// Tracer, when set, records replay/checkpoint/compaction spans
	// under Scope.
	Tracer *obs.XTracer
	// Scope names this store in spans and log lines (e.g. "srv0").
	Scope string
}

// Stats is a snapshot of store activity since Open.
type Stats struct {
	// Appends counts acknowledged record appends; AppendedBytes their
	// data payload bytes.
	Appends, AppendedBytes int64
	// LogBytes is the current on-disk log size (all segments, frames
	// included); LiveBytes the data bytes still referenced by the
	// mapping table.
	LogBytes, LiveBytes int64
	// Checkpoints counts installed checkpoints; Replays counts Opens
	// that found existing state; ReplayedRecords the records applied
	// by those replays.
	Checkpoints, Replays, ReplayedRecords int64
	// TruncatedTails counts torn tails cut off during replay;
	// BadGenerations counts records rejected by the generation check;
	// BadCheckpoints counts checkpoints that failed validation and
	// forced a full replay.
	TruncatedTails, BadGenerations, BadCheckpoints int64
	// CompactionRuns counts completed compactions.
	CompactionRuns int64
	// Generation is the store generation stamped on new records.
	Generation uint64
	// DeviceFailed reports degraded (in-memory) mode.
	DeviceFailed bool
	// Crashed reports a fired simulated kill.
	Crashed bool
}

// obsCounters are the pre-resolved registry instruments; nil when the
// store runs without a registry (the zero-cost-when-off contract).
type obsCounters struct {
	appends, checkpoints, replays, replayedRecords *obs.Counter
	truncatedTails, badGenerations, badCheckpoints *obs.Counter
	compactionRuns, deviceFailures                 *obs.Counter
	logBytes, liveBytes                            *obs.Gauge
}

// LogStore implements pfsnet.ObjectStore over an append-only,
// checksummed log with checkpointed recovery. Safe for concurrent use:
// reads share the lock, writes and compaction serialize on it.
type LogStore struct {
	dir string
	cfg Config

	// mu guards all mutable state below. Appends write the log file
	// inside the critical section deliberately: the log's append order
	// IS the replay apply order, so the write cannot move outside the
	// lock without reordering recovery. Reads hold it shared, which
	// also pins the segment files against a concurrent compaction swap.
	mu      sync.RWMutex
	segs    map[uint64]*os.File
	active  uint64 // sequence of the append segment
	tail    int64  // append offset in the active segment
	objects map[uint64]*object
	gen     uint64

	liveBytes  int64 // data bytes referenced by the mapping table
	dataBytes  int64 // data bytes appended across live segments (live+dead)
	frameBytes int64 // on-disk bytes across live segments
	sinceCkpt  int64 // log bytes appended since the last checkpoint
	enc        []byte

	deviceDown bool
	overlay    map[uint64][]byte // degraded-mode in-memory objects

	// Simulated-kill injection (CrashAppend): when crashAfter counts
	// down to zero the append writes only a prefix of its frame and the
	// store latches dead, exactly as if the process took SIGKILL
	// between two pwrites.
	crashAfter int64
	crashFrac  float64
	crashed    bool

	appends atomic.Int64 // record appends; read lock-free by pfsnet's ssdfail trigger

	st struct {
		appendedBytes, checkpoints, replays, replayedRecords  int64
		truncatedTails, badGenerations, badCheckpoints        int64
		compactionRuns, deviceFailures                        int64
	}
	oc *obsCounters

	quit      chan struct{}
	compactC  chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

const (
	segPrefix    = "seg-"
	segSuffix    = ".log"
	segHeaderLen = 16 // magic + sequence
	ckptName     = "checkpoint"
	ckptTmpName  = "checkpoint.tmp"
)

var segMagic = [8]byte{'I', 'B', 'L', 'S', 'E', 'G', '0', '1'}

// Open opens (or creates) the store under dir, replaying any existing
// journal: the checkpointed mapping table is loaded, the log suffix is
// replayed, torn tails are truncated, and a fresh checkpoint is
// installed under the bumped generation before the store serves.
func Open(dir string, cfg Config) (*LogStore, error) {
	if cfg.CheckpointBytes == 0 {
		cfg.CheckpointBytes = 4 << 20
	}
	if cfg.GarbageRatio <= 0 || cfg.GarbageRatio >= 1 {
		cfg.GarbageRatio = 0.5
	}
	if cfg.CompactMinBytes <= 0 {
		cfg.CompactMinBytes = 1 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &LogStore{
		dir:     dir,
		cfg:     cfg,
		segs:    make(map[uint64]*os.File),
		objects: make(map[uint64]*object),
	}
	if reg := cfg.Obs; reg != nil {
		s.oc = &obsCounters{
			appends:         reg.Counter("logstore.appends"),
			checkpoints:     reg.Counter("logstore.checkpoints"),
			replays:         reg.Counter("logstore.replays"),
			replayedRecords: reg.Counter("logstore.replayed_records"),
			truncatedTails:  reg.Counter("logstore.truncated_tails"),
			badGenerations:  reg.Counter("logstore.bad_generations"),
			badCheckpoints:  reg.Counter("logstore.bad_checkpoints"),
			compactionRuns:  reg.Counter("logstore.compaction_runs"),
			deviceFailures:  reg.Counter("logstore.device_failures"),
			logBytes:        reg.Gauge("logstore.log_bytes"),
			liveBytes:       reg.Gauge("logstore.live_bytes"),
		}
	}
	if err := s.recover(); err != nil {
		s.closeSegsLocked()
		return nil, err
	}
	s.quit = make(chan struct{})
	s.compactC = make(chan struct{}, 1)
	if !cfg.NoCompactor {
		s.wg.Add(1)
		go s.compactor()
	}
	return s, nil
}

// segPath returns the path of segment seq.
func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016d%s", segPrefix, seq, segSuffix))
}

// listSegments returns the sequence numbers of the segment files under
// dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		seq, err := strconv.ParseUint(num, 10, 64)
		if err != nil {
			continue // foreign file; leave it alone
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// recover rebuilds the mapping table from the checkpoint and journal,
// truncates torn tails, bumps the generation, and installs the
// recovery checkpoint. Called from Open, before any concurrency.
func (s *LogStore) recover() error {
	start := time.Now()
	ck, ckOK := loadCheckpoint(filepath.Join(s.dir, ckptName))
	seqs, err := listSegments(s.dir)
	if err != nil {
		return err
	}
	hadState := ckOK || len(seqs) > 0
	// A checkpoint usually references one segment (compaction rewrites
	// everything into the new one before checkpointing), but a recovery
	// checkpoint taken after a full replay can reference several. Every
	// referenced segment must survive on disk or the checkpoint is not
	// trustworthy.
	var refs map[uint64]bool
	if ckOK {
		refs = map[uint64]bool{ck.seg: true}
		for _, o := range ck.objects {
			for _, e := range o.ext {
				refs[e.seg] = true
			}
		}
		for _, seq := range sortedKeys(refs) {
			if !containsSeq(seqs, seq) {
				ckOK = false
				break
			}
		}
	}
	if !ckOK && hadState {
		s.st.badCheckpoints++
		if s.oc != nil {
			s.oc.badCheckpoints.Inc()
		}
	}
	if ckOK {
		// Unreferenced segments — compaction input already superseded
		// by the checkpoint, or a torn compaction output that never
		// made it into one — are deleted, not replayed: the referenced
		// segments cover all live data.
		for _, seq := range seqs {
			if !refs[seq] {
				os.Remove(segPath(s.dir, seq))
			}
		}
		for _, seq := range sortedKeys(refs) {
			f, tail, err := s.openSegment(seq, false)
			if err != nil {
				return err
			}
			s.segs[seq] = f
			s.frameBytes += tail
			if seq == ck.seg {
				s.active, s.tail = seq, tail
			}
		}
		s.gen = ck.gen
		s.objects, s.liveBytes = ck.objects, ck.liveBytes
		s.dataBytes = ck.dataBytes
		// Replay the active segment's suffix past the checkpoint.
		// Records there must carry exactly the checkpoint's generation:
		// the generation is re-stamped by the checkpoint every Open
		// installs, so any other value is corruption, not history.
		if err := s.replaySegment(ck.seg, max(ck.off, segHeaderLen), ck.gen, true); err != nil {
			return err
		}
	} else {
		// No trustworthy checkpoint: replay every surviving segment
		// from scratch, oldest first. Generations must be
		// non-decreasing in append order.
		var lastGen uint64
		for _, seq := range seqs {
			f, tail, err := s.openSegment(seq, false)
			if err != nil {
				return err
			}
			s.segs[seq] = f
			s.active, s.tail = seq, tail
			s.frameBytes += tail
			if err := s.replaySegment(seq, segHeaderLen, lastGen, false); err != nil {
				return err
			}
			lastGen = s.gen
		}
	}
	if len(s.segs) == 0 {
		s.active = 1
		f, tail, err := s.openSegment(s.active, true)
		if err != nil {
			return err
		}
		s.segs[s.active] = f
		s.tail, s.frameBytes = tail, tail
	}
	s.gen++ // this run's generation
	if hadState {
		s.st.replays++
		if s.oc != nil {
			s.oc.replays.Inc()
		}
	}
	// The recovery checkpoint stamps the new generation and makes the
	// truncated, replayed state durable before the store serves.
	if err := s.checkpointLocked(); err != nil {
		return err
	}
	s.setByteGauges()
	if tr := s.cfg.Tracer; tr != nil {
		tr.Span(tr.NewID(), tr.NewID(), 0, "logstore.replay", s.cfg.Scope, start, time.Since(start))
	}
	return nil
}

// containsSeq reports whether seqs (ascending) contains seq.
func containsSeq(seqs []uint64, seq uint64) bool {
	i := sort.Search(len(seqs), func(i int) bool { return seqs[i] >= seq })
	return i < len(seqs) && seqs[i] == seq
}

// openSegment opens segment seq, creating and stamping it when create
// is set, and returns the handle plus its current size. An existing
// segment whose header is torn (shorter than the header, or stamped
// wrong) is reset to an empty stamped segment — the header write
// itself can be the interrupted operation.
func (s *LogStore) openSegment(seq uint64, create bool) (*os.File, int64, error) {
	flags := os.O_RDWR
	if create {
		flags |= os.O_CREATE
	}
	f, err := os.OpenFile(segPath(s.dir, seq), flags, 0o644)
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	size := st.Size()
	var hdr [segHeaderLen]byte
	ok := size >= segHeaderLen
	if ok {
		if _, err := f.ReadAt(hdr[:8], 0); err != nil || [8]byte(hdr[:8]) != segMagic {
			ok = false
		}
	}
	if !ok {
		copy(hdr[:8], segMagic[:])
		putU64(hdr[8:], seq)
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			f.Close()
			return nil, 0, err
		}
		if err := f.Truncate(segHeaderLen); err != nil {
			f.Close()
			return nil, 0, err
		}
		size = segHeaderLen
	}
	return f, size, nil
}

// replaySegment applies the records of segment seq from byte offset
// from to the current tail. strict pins every record's generation to
// wantGen (suffix replay under a checkpoint); otherwise generations
// must be non-decreasing starting at wantGen and s.gen tracks the
// highest seen. The first framing, checksum, or generation violation
// truncates the segment there (the torn tail) and ends its replay.
func (s *LogStore) replaySegment(seq uint64, from int64, wantGen uint64, strict bool) error {
	f := s.segs[seq]
	if from > s.tail {
		from = s.tail
	}
	buf := make([]byte, s.tail-from)
	if _, err := f.ReadAt(buf, from); err != nil && err != io.EOF {
		return err
	}
	pos := from
	lastGen := wantGen
	for len(buf) > 0 {
		rec, n, err := decodeRecord(buf)
		if err == nil {
			if strict && rec.gen != wantGen {
				err = fmt.Errorf("logstore: generation %d, checkpoint stamped %d", rec.gen, wantGen)
			} else if !strict && rec.gen < lastGen {
				err = fmt.Errorf("logstore: generation regressed %d -> %d", lastGen, rec.gen)
			}
			if err != nil {
				s.st.badGenerations++
				if s.oc != nil {
					s.oc.badGenerations.Inc()
				}
			}
		}
		if err != nil {
			// Torn tail: everything from pos on never happened.
			if terr := f.Truncate(pos); terr != nil {
				return terr
			}
			s.frameBytes -= s.tail - pos
			s.tail = pos
			s.st.truncatedTails++
			if s.oc != nil {
				s.oc.truncatedTails.Inc()
			}
			return nil
		}
		o := s.objects[rec.file]
		if o == nil {
			o = &object{}
			s.objects[rec.file] = o
		}
		dead := o.insert(extent{
			off: rec.off, n: int64(len(rec.data)),
			seg: seq, pos: pos + recOverhead, gen: rec.gen,
		})
		s.liveBytes += int64(len(rec.data)) - dead
		s.dataBytes += int64(len(rec.data))
		lastGen = rec.gen
		if !strict && rec.gen > s.gen {
			s.gen = rec.gen
		}
		s.st.replayedRecords++
		if s.oc != nil {
			s.oc.replayedRecords.Inc()
		}
		buf = buf[n:]
		pos += int64(n)
	}
	return nil
}

// WriteAt implements pfsnet.ObjectStore: the write becomes one
// checksummed record appended to the active segment, acknowledged only
// after the log write returns, then published in the mapping table.
func (s *LogStore) WriteAt(file uint64, off int64, data []byte) error {
	if off < 0 {
		return fmt.Errorf("logstore: negative offset %d", off)
	}
	if int64(len(data)) > MaxRecordData {
		return fmt.Errorf("logstore: write of %d bytes exceeds record limit %d", len(data), int64(MaxRecordData))
	}
	if len(data) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return ErrCrashed
	}
	if s.deviceDown {
		s.overlayWriteLocked(file, off, data)
		return nil
	}
	s.enc = appendRecord(s.enc[:0], record{kind: recKindWrite, gen: s.gen, file: file, off: off, data: data})
	frame := s.enc
	f := s.segs[s.active]
	if s.crashAfter > 0 {
		if s.crashAfter--; s.crashAfter == 0 {
			// The simulated kill lands mid-pwrite: a prefix of the
			// frame reaches the log, the caller never gets its ack, and
			// the store is dead until the next Open truncates the tear.
			torn := int(float64(len(frame)) * s.crashFrac)
			torn = min(max(torn, 0), len(frame))
			if torn > 0 {
				//lint:allow lockio the log append is the critical section: append order is replay order
				f.WriteAt(frame[:torn], s.tail)
			}
			s.crashed = true
			return ErrCrashed
		}
	}
	//lint:allow lockio the log append is the critical section: append order is replay order
	if _, err := f.WriteAt(frame, s.tail); err != nil {
		return err
	}
	o := s.objects[file]
	if o == nil {
		o = &object{}
		s.objects[file] = o
	}
	dead := o.insert(extent{
		off: off, n: int64(len(data)),
		seg: s.active, pos: s.tail + recOverhead, gen: s.gen,
	})
	s.liveBytes += int64(len(data)) - dead
	s.dataBytes += int64(len(data))
	s.tail += int64(len(frame))
	s.frameBytes += int64(len(frame))
	s.sinceCkpt += int64(len(frame))
	s.st.appendedBytes += int64(len(data))
	s.appends.Add(1)
	if s.oc != nil {
		s.oc.appends.Inc()
		s.setByteGauges()
	}
	if s.cfg.CheckpointBytes > 0 && s.sinceCkpt >= s.cfg.CheckpointBytes {
		if err := s.checkpointLocked(); err != nil {
			return err
		}
	}
	if s.needCompactLocked() {
		select {
		case s.compactC <- struct{}{}:
		default:
		}
	}
	return nil
}

// overlayWriteLocked applies a degraded-mode write to the in-memory
// snapshot (MemStore growth semantics). mu held.
func (s *LogStore) overlayWriteLocked(file uint64, off int64, data []byte) {
	o := s.overlay[file]
	if end := off + int64(len(data)); int64(len(o)) < end {
		if end <= int64(cap(o)) {
			o = o[:end]
		} else {
			grown := make([]byte, end, max(end, 2*int64(cap(o))))
			copy(grown, o)
			o = grown
		}
	}
	copy(o[off:], data)
	s.overlay[file] = o
}

// ReadAt implements pfsnet.ObjectStore with sparse semantics: ranges
// no record ever wrote read as zeros. Readers share the lock, so
// concurrent reads (same or different objects) do not serialize.
func (s *LogStore) ReadAt(file uint64, off int64, p []byte) error {
	if off < 0 {
		return fmt.Errorf("logstore: negative offset %d", off)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.crashed {
		return ErrCrashed
	}
	clear(p)
	if s.deviceDown {
		if o := s.overlay[file]; off < int64(len(o)) {
			copy(p, o[off:])
		}
		return nil
	}
	return s.readLocked(file, off, p)
}

// readLocked fills p from the mapping table and segment files (mu held
// at least shared — the hold is what pins the segments against a
// compaction swap).
func (s *LogStore) readLocked(file uint64, off int64, p []byte) error {
	o := s.objects[file]
	if o == nil {
		return nil
	}
	var err error
	o.each(off, int64(len(p)), func(e extent, dst int64) {
		if err != nil {
			return
		}
		if _, rerr := s.segs[e.seg].ReadAt(p[dst:dst+e.n], e.pos); rerr != nil {
			err = rerr
		}
	})
	return err
}

// Size implements pfsnet.ObjectStore: the logical object length (the
// furthest byte any write reached), 0 for objects never written.
func (s *LogStore) Size(file uint64) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.crashed {
		return 0, ErrCrashed
	}
	if s.deviceDown {
		return int64(len(s.overlay[file])), nil
	}
	if o := s.objects[file]; o != nil {
		return o.size, nil
	}
	return 0, nil
}

// Close stops the compactor, makes the log durable (fsync), installs a
// final checkpoint, and closes the segment files. After a simulated
// crash Close only releases handles: nothing more reaches the disk,
// exactly like the process it models. Idempotent.
func (s *LogStore) Close() error {
	s.closeOnce.Do(func() {
		if s.quit != nil {
			close(s.quit)
			s.wg.Wait()
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if !s.crashed && !s.deviceDown {
			if err := s.segs[s.active].Sync(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
			if err := s.checkpointLocked(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
		if err := s.closeSegsLocked(); err != nil && s.closeErr == nil {
			s.closeErr = err
		}
	})
	return s.closeErr
}

// closeSegsLocked closes every segment handle in sequence order (so
// which close error wins is deterministic) and clears the map.
func (s *LogStore) closeSegsLocked() error {
	seqs := make([]uint64, 0, len(s.segs))
	for seq := range s.segs {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	var first error
	for _, seq := range seqs {
		if err := s.segs[seq].Close(); err != nil && first == nil {
			first = err
		}
	}
	clear(s.segs)
	return first
}

// FailDevice simulates the SSD log device failing under the store (the
// fault plan's ssdfail clause): the current state is materialized into
// memory while the device still answers, and every subsequent
// operation is served from that snapshot — graceful degradation per
// DESIGN §10, losing durability but never an acknowledged byte within
// the process lifetime. Safe to call more than once.
func (s *LogStore) FailDevice() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deviceDown || s.crashed {
		return nil
	}
	ids := make([]uint64, 0, len(s.objects))
	for id := range s.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	overlay := make(map[uint64][]byte, len(ids))
	for _, id := range ids {
		o := s.objects[id]
		buf := make([]byte, o.size)
		if err := s.readLocked(id, 0, buf); err != nil {
			return err
		}
		overlay[id] = buf
	}
	s.overlay = overlay
	s.deviceDown = true
	s.st.deviceFailures++
	if s.oc != nil {
		s.oc.deviceFailures.Inc()
	}
	return nil
}

// DeviceFailed reports degraded (in-memory) mode.
func (s *LogStore) DeviceFailed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.deviceDown
}

// CrashAppend arms a simulated process kill: the n-th subsequent
// record append (1-based) writes only the first frac (0..1) of its
// on-disk frame and the store latches dead — every later operation
// returns ErrCrashed, and Close neither syncs nor checkpoints. The
// next Open replays the log and truncates the torn frame, exactly as
// after a real SIGKILL between two pwrites. The recovery harness
// (cmd/logstore-chaos) drives its kill-at-every-Kth-op loop with this.
func (s *LogStore) CrashAppend(n int64, frac float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashAfter = n
	s.crashFrac = frac
}

// Crashed reports whether the simulated kill has fired.
func (s *LogStore) Crashed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.crashed
}

// RecordAppends returns the number of acknowledged record appends
// since Open. pfsnet's data server counts these toward the fault
// plan's ssdfail trigger, so write-count fault specs apply to the
// logstore exactly as to the legacy fragment log.
func (s *LogStore) RecordAppends() int64 { return s.appends.Load() }

// Generation returns the store generation stamped on new records.
func (s *LogStore) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// Stats returns a snapshot of store counters.
func (s *LogStore) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Appends:         s.appends.Load(),
		AppendedBytes:   s.st.appendedBytes,
		LogBytes:        s.frameBytes,
		LiveBytes:       s.liveBytes,
		Checkpoints:     s.st.checkpoints,
		Replays:         s.st.replays,
		ReplayedRecords: s.st.replayedRecords,
		TruncatedTails:  s.st.truncatedTails,
		BadGenerations:  s.st.badGenerations,
		BadCheckpoints:  s.st.badCheckpoints,
		CompactionRuns:  s.st.compactionRuns,
		Generation:      s.gen,
		DeviceFailed:    s.deviceDown,
		Crashed:         s.crashed,
	}
}

// setByteGauges publishes the log/live byte gauges (mu held; oc may be
// nil).
func (s *LogStore) setByteGauges() {
	if s.oc != nil {
		s.oc.logBytes.Set(s.frameBytes)
		s.oc.liveBytes.Set(s.liveBytes)
	}
}
