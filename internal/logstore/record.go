package logstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// On-disk record framing. Every mutation of the store is one
// length-prefixed, checksummed record appended to the active log
// segment:
//
//	u32  length   — bytes that follow the crc field (body length)
//	u32  crc32c   — Castagnoli checksum over the body
//	body:
//	  u8   kind       — recKindWrite
//	  u64  generation — the store generation that appended the record
//	  u64  file       — object id
//	  i64  off        — logical object offset
//	  data            — length-25 payload bytes
//
// The framing is the recovery contract: replay walks records in append
// order and the first one that fails to frame or checksum marks the
// torn tail — everything before it is durable, everything at and after
// it never happened (the file is truncated there). A record is
// therefore atomic: a crash mid-append loses the whole record, never a
// prefix of its bytes.
const (
	recKindWrite = 1

	recHeaderLen = 8                 // length + crc
	recBodyFixed = 1 + 8 + 8 + 8     // kind + generation + file + off
	recOverhead  = recHeaderLen + recBodyFixed

	// MaxRecordData bounds one record's payload. Anything larger in a
	// length field is treated as framing corruption, which keeps a
	// single flipped length bit from making replay allocate gigabytes.
	MaxRecordData = 16 << 20
)

// Decode errors. All of them mean "torn or corrupt at this offset" to
// replay; they are distinct so tests and the fuzzer can assert which
// guard tripped.
var (
	errShortRecord = errors.New("logstore: short record frame")
	errBadLength   = errors.New("logstore: bad record length")
	errBadCRC      = errors.New("logstore: record checksum mismatch")
	errBadKind     = errors.New("logstore: unknown record kind")
	errBadOffset   = errors.New("logstore: negative record offset")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// record is one decoded log record.
type record struct {
	kind byte
	gen  uint64
	file uint64
	off  int64
	data []byte
}

// frameLen returns the on-disk size of rec's frame.
func (r record) frameLen() int { return recOverhead + len(r.data) }

// appendRecord appends rec's wire frame to dst and returns the
// extended slice.
func appendRecord(dst []byte, rec record) []byte {
	body := recBodyFixed + len(rec.data)
	dst = binary.BigEndian.AppendUint32(dst, uint32(body))
	crcAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // crc placeholder
	bodyAt := len(dst)
	dst = append(dst, rec.kind)
	dst = binary.BigEndian.AppendUint64(dst, rec.gen)
	dst = binary.BigEndian.AppendUint64(dst, rec.file)
	dst = binary.BigEndian.AppendUint64(dst, uint64(rec.off))
	dst = append(dst, rec.data...)
	binary.BigEndian.PutUint32(dst[crcAt:], crc32.Checksum(dst[bodyAt:], castagnoli))
	return dst
}

// decodeRecord parses one record from the head of b. It returns the
// record, the number of frame bytes consumed, and an error when the
// head of b is not a complete, well-formed record. The returned
// record's data aliases b. decodeRecord never panics on arbitrary
// input (FuzzLogRecord pins this).
func decodeRecord(b []byte) (record, int, error) {
	if len(b) < recHeaderLen {
		return record{}, 0, errShortRecord
	}
	body := binary.BigEndian.Uint32(b)
	if body < recBodyFixed || body > recBodyFixed+MaxRecordData {
		return record{}, 0, fmt.Errorf("%w: %d", errBadLength, body)
	}
	total := recHeaderLen + int(body)
	if len(b) < total {
		return record{}, 0, errShortRecord
	}
	crc := binary.BigEndian.Uint32(b[4:])
	payload := b[recHeaderLen:total]
	if crc32.Checksum(payload, castagnoli) != crc {
		return record{}, 0, errBadCRC
	}
	rec := record{
		kind: payload[0],
		gen:  binary.BigEndian.Uint64(payload[1:]),
		file: binary.BigEndian.Uint64(payload[9:]),
		off:  int64(binary.BigEndian.Uint64(payload[17:])),
		data: payload[recBodyFixed:],
	}
	if rec.kind != recKindWrite {
		return record{}, 0, fmt.Errorf("%w: %d", errBadKind, rec.kind)
	}
	if rec.off < 0 {
		return record{}, 0, errBadOffset
	}
	return rec, total, nil
}
