package logstore

import (
	"slices"
	"sort"
)

// extent maps one live logical byte range of an object to the log
// bytes holding its current contents.
type extent struct {
	off int64  // logical object offset
	n   int64  // length in bytes
	seg uint64 // segment holding the data
	pos int64  // absolute offset of the first data byte in seg
	gen uint64 // generation of the record that wrote it
}

// object is the in-memory index of one stored object: its logical size
// (monotone, sparse-write semantics) and the sorted, non-overlapping
// extent list over the log.
type object struct {
	size int64
	ext  []extent
}

// insert splices e into the extent list, trimming or splitting any
// older extents it overlaps, and returns the number of previously live
// bytes the new extent superseded (they become log garbage).
func (o *object) insert(e extent) (dead int64) {
	if end := e.off + e.n; end > o.size {
		o.size = end
	}
	// First extent whose end lies past e's start.
	i := sort.Search(len(o.ext), func(i int) bool { return o.ext[i].off+o.ext[i].n > e.off })
	j := i
	var left, right extent
	var hasLeft, hasRight bool
	for ; j < len(o.ext) && o.ext[j].off < e.off+e.n; j++ {
		old := o.ext[j]
		if old.off < e.off {
			// Only the first overlapped extent can stick out on the left.
			left = old
			left.n = e.off - old.off
			hasLeft = true
		}
		if old.off+old.n > e.off+e.n {
			// Only the last overlapped extent can stick out on the right.
			cut := e.off + e.n - old.off
			right = old
			right.off += cut
			right.pos += cut
			right.n -= cut
			hasRight = true
		}
		lo := max(old.off, e.off)
		hi := min(old.off+old.n, e.off+e.n)
		dead += hi - lo
	}
	repl := make([]extent, 0, 3)
	if hasLeft {
		repl = append(repl, left)
	}
	repl = append(repl, e)
	if hasRight {
		repl = append(repl, right)
	}
	o.ext = slices.Replace(o.ext, i, j, repl...)
	return dead
}

// each calls fn for every live extent intersecting [off, off+n),
// trimmed to the intersection, in ascending logical order. dst is the
// byte offset of the trimmed extent relative to off.
func (o *object) each(off, n int64, fn func(e extent, dst int64)) {
	i := sort.Search(len(o.ext), func(i int) bool { return o.ext[i].off+o.ext[i].n > off })
	for ; i < len(o.ext) && o.ext[i].off < off+n; i++ {
		e := o.ext[i]
		lo := max(e.off, off)
		hi := min(e.off+e.n, off+n)
		fn(extent{off: lo, n: hi - lo, seg: e.seg, pos: e.pos + (lo - e.off), gen: e.gen}, lo-off)
	}
}

// liveBytes sums the extent lengths.
func (o *object) liveBytes() int64 {
	var n int64
	for _, e := range o.ext {
		n += e.n
	}
	return n
}
