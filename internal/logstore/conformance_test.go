package logstore

import (
	"testing"

	"repro/internal/storetest"
)

// LogStore runs the same storetest conformance suite as MemStore and
// FileStore (pfsnet's store_conformance_test.go): identical sparse,
// zero-fill, negative-offset, and concurrency semantics, plus the
// durability this package adds on top.
func TestLogStoreConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) storetest.Store {
		s, err := Open(t.TempDir(), Config{NoCompactor: true})
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}

// TestLogStoreConformanceDegraded re-runs the suite against a store
// whose log device has already failed: degraded mode must keep the
// exact ObjectStore semantics, just without durability.
func TestLogStoreConformanceDegraded(t *testing.T) {
	storetest.Run(t, func(t *testing.T) storetest.Store {
		s, err := Open(t.TempDir(), Config{NoCompactor: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.FailDevice(); err != nil {
			t.Fatal(err)
		}
		return s
	})
}
