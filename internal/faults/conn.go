package faults

import (
	"net"
	"sync/atomic"
	"time"
)

// faultConn wraps a net.Conn with the plan's rate-driven faults. Only
// Read and Write are intercepted; deadline and address plumbing pass
// straight through so the resilience code under test sees a real conn.
type faultConn struct {
	net.Conn
	plan  *Plan
	scope string
	// dead latches after an injected reset/partial so the victim conn
	// stays broken (a real reset peer does not come back).
	dead atomic.Bool
}

// WrapConn arms c with the plan's conn faults. A nil plan (or one with
// no conn faults armed) returns c unchanged, so the no-plan path adds
// neither an allocation nor an interface indirection.
func (p *Plan) WrapConn(c net.Conn, scope string) net.Conn {
	if p == nil || !p.hasConnFaults() {
		return c
	}
	return &faultConn{Conn: c, plan: p, scope: scope}
}

func (p *Plan) hasConnFaults() bool {
	return p.rates[kindReset].period > 0 ||
		p.rates[kindPartial].period > 0 ||
		p.rates[kindCorrupt].period > 0 ||
		p.rates[kindLatency].period > 0
}

func (c *faultConn) Write(b []byte) (int, error) {
	if c.dead.Load() {
		return 0, errReset
	}
	c.maybeSleep()
	// Reset and partial-write schedules count conn writes: the write
	// sequence is a pure function of the protocol traffic, unlike read
	// sizes, which depend on TCP segmentation.
	if c.plan.fire(kindReset, c.scope) {
		c.dead.Store(true)
		c.Conn.Close()
		return 0, errReset
	}
	if c.plan.fire(kindPartial, c.scope) && len(b) > 1 {
		n, _ := c.Conn.Write(b[:len(b)/2])
		c.dead.Store(true)
		c.Conn.Close()
		return n, errPartial
	}
	return c.Conn.Write(b)
}

// WriteBuffers applies the write-fault schedule to a vectored batch as
// a single unit — one writev submission counts exactly one write op,
// the same accounting a corked bufio flush got from Write, so a fault
// schedule stays a pure function of the protocol traffic — and forwards
// the buffers to the wrapped conn via net.Buffers.WriteTo, so the real
// writev still happens underneath. The partial-write fault truncates
// the batch mid-stream (half its bytes) before killing the conn, which
// the peer observes as a truncated frame, never a hang.
func (c *faultConn) WriteBuffers(v *net.Buffers) (int64, error) {
	if c.dead.Load() {
		return 0, errReset
	}
	c.maybeSleep()
	if c.plan.fire(kindReset, c.scope) {
		c.dead.Store(true)
		c.Conn.Close()
		return 0, errReset
	}
	if c.plan.fire(kindPartial, c.scope) {
		var total int64
		for _, b := range *v {
			total += int64(len(b))
		}
		if total > 1 {
			n := c.writePrefix(v, total/2)
			c.dead.Store(true)
			c.Conn.Close()
			return n, errPartial
		}
	}
	return v.WriteTo(c.Conn)
}

// writePrefix writes the first limit bytes of the batch sequentially.
func (c *faultConn) writePrefix(v *net.Buffers, limit int64) int64 {
	var written int64
	for _, b := range *v {
		if remain := limit - written; int64(len(b)) > remain {
			b = b[:remain]
		}
		n, err := c.Conn.Write(b)
		written += int64(n)
		if err != nil || written >= limit {
			break
		}
	}
	return written
}

func (c *faultConn) Read(b []byte) (int, error) {
	if c.dead.Load() {
		return 0, errReset
	}
	c.maybeSleep()
	n, err := c.Conn.Read(b)
	// Corruption clobbers one byte of whatever arrived. Firing is only
	// approximately deterministic (read calls depend on segmentation);
	// the deterministic acceptance plans use resets and crashes instead.
	if n > 0 && c.plan.fire(kindCorrupt, c.scope) {
		i := int(splitmix(c.plan.seed^c.plan.ops[kindCorrupt].Load()) % uint64(n))
		b[i] ^= 0xFF
	}
	return n, err
}

// maybeSleep injects the latency fault. This is the one intentionally
// wall-clock effect in the subsystem: it changes *when* things happen,
// never *which* faults fire.
func (c *faultConn) maybeSleep() {
	if !c.plan.latencyApplies(c.scope) {
		return
	}
	if c.plan.fire(kindLatency, c.scope) {
		n := c.plan.ops[kindLatency].Load()
		time.Sleep(c.plan.latency(n)) //lint:allow detclock fault injector's real-timer latency effect
	}
}

// faultListener wraps Accept so every inbound conn carries the faults.
type faultListener struct {
	net.Listener
	plan  *Plan
	scope string
}

// WrapListener arms every conn accepted from ln. Nil-plan passthrough.
func (p *Plan) WrapListener(ln net.Listener, scope string) net.Listener {
	if p == nil || !p.hasConnFaults() {
		return ln
	}
	return &faultListener{Listener: ln, plan: p, scope: scope}
}

func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.plan.WrapConn(c, l.scope), nil
}

// Dial dials with the plan's refusal fault and wraps the resulting conn.
// With a nil plan it is exactly net.DialTimeout (or net.Dial when
// timeout is zero).
func (p *Plan) Dial(scope, network, addr string, timeout time.Duration) (net.Conn, error) {
	if p != nil && p.fire(kindRefuse, scope) {
		return nil, errRefused
	}
	var c net.Conn
	var err error
	if timeout > 0 {
		c, err = net.DialTimeout(network, addr, timeout)
	} else {
		c, err = net.Dial(network, addr)
	}
	if err != nil {
		return nil, err
	}
	return p.WrapConn(c, scope), nil
}
