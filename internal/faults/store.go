package faults

import (
	"fmt"
	"sync/atomic"
)

// Store is the object-store surface the injector can wrap. It is
// structurally identical to pfsnet.ObjectStore (faults cannot import
// pfsnet — pfsnet imports faults), so values assign both ways.
type Store interface {
	WriteAt(id uint64, off int64, data []byte) error
	ReadAt(id uint64, off int64, n int64) ([]byte, error)
	Size(id uint64) (int64, error)
	Close() error
}

// ErrSSDFailed reports an operation against a store whose simulated SSD
// device has failed.
var ErrSSDFailed = fmt.Errorf("ssd device failed (%w)", ErrInjected)

// faultStore counts writes toward a scheduled SSD-device failure and
// fails all I/O once the device is down.
type faultStore struct {
	Store
	plan   *Plan
	writes atomic.Int64
	limit  int64
	failed atomic.Bool
	onFail func()
}

// WrapStore arms s with scope's count-triggered SSD failure, if the plan
// schedules one; otherwise (or on a nil plan) s is returned unchanged.
// onFail, if non-nil, runs exactly once when the failure trips — the
// data server uses it to drain its fragment log before the device dies,
// modelling a controlled firmware degrade rather than torn metadata.
func (p *Plan) WrapStore(s Store, scope string, onFail func()) Store {
	if p == nil {
		return s
	}
	n, ok := p.SSDFailWrites(scope)
	if !ok {
		return s
	}
	return &faultStore{Store: s, plan: p, limit: n, onFail: onFail}
}

func (s *faultStore) WriteAt(id uint64, off int64, data []byte) error {
	if s.failed.Load() {
		return ErrSSDFailed
	}
	if s.writes.Add(1) == s.limit {
		s.fail()
		return ErrSSDFailed
	}
	return s.Store.WriteAt(id, off, data)
}

func (s *faultStore) ReadAt(id uint64, off int64, n int64) ([]byte, error) {
	if s.failed.Load() {
		return nil, ErrSSDFailed
	}
	return s.Store.ReadAt(id, off, n)
}

func (s *faultStore) fail() {
	if s.failed.Swap(true) {
		return
	}
	s.plan.NoteSSDFail()
	if s.onFail != nil {
		s.onFail()
	}
}

// Failed reports whether the wrapped device has tripped.
func (s *faultStore) Failed() bool { return s.failed.Load() }
