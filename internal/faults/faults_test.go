package faults

import (
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestParseErrors(t *testing.T) {
	bad := []string{
		"bogus=1",
		"reset",
		"reset=maybe",
		"reset=0%",
		"reset=200%",
		"reset=3/2",
		"latency=fast",
		"latency=5ms-1ms",
		"latency=1ms@0/4",
		"crash=srv0",
		"crash=srv0@x+1",
		"crash=srv0@3+0",
		"ssdfail=srv0",
		"ssdfail=srv0@-3",
		"ssdfail=srv0@soon",
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): want error, got nil", spec)
		}
	}
	ok := []string{
		"",
		" ; ; ",
		"seed=7",
		"reset=1%;refuse=1/50;partial=0.5%;corrupt=2%",
		"latency=1ms",
		"latency=1ms-3ms@5%",
		"crash=srv0@10+4;crash=srv1@2+2",
		"ssdfail=srv0@100;ssdfail=srv1@250ms",
	}
	for _, spec := range ok {
		if _, err := Parse(spec); err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
		}
	}
}

func TestNilPlanDisarmed(t *testing.T) {
	var p *Plan
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if got := p.WrapConn(c1, "x"); got != c1 {
		t.Fatalf("nil plan WrapConn returned a wrapper")
	}
	if p.fire(kindReset, "") {
		t.Fatalf("nil plan fired")
	}
	if _, ok := p.SSDFailWrites("srv0"); ok {
		t.Fatalf("nil plan scheduled an ssd failure")
	}
	if p.Events() != nil {
		t.Fatalf("nil plan has events")
	}
	if p.Seed() != 0 || p.String() != "" {
		t.Fatalf("nil plan accessors not zero")
	}
	if n := len(p.Counts()); n != 0 {
		t.Fatalf("nil plan counts = %d entries", n)
	}
	p.SetObs(obs.NewRegistry()) // must not panic
	p.NoteCrash()
	p.NoteSSDFail()
}

// An unarmed (but non-nil) plan must also be pure passthrough.
func TestUnarmedPassthrough(t *testing.T) {
	p := MustParse("seed=3")
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if got := p.WrapConn(c1, "x"); got != c1 {
		t.Fatalf("unarmed WrapConn returned a wrapper")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if got := p.WrapListener(ln, "x"); got != ln {
		t.Fatalf("unarmed WrapListener returned a wrapper")
	}
}

func TestStrideDeterminism(t *testing.T) {
	// Same spec, same op sequence → identical injection counts.
	counts := func() map[string]int64 {
		p := MustParse("seed=42;reset=1/10")
		c1, c2 := net.Pipe()
		defer c2.Close()
		go io.Copy(io.Discard, c2)
		fc := p.WrapConn(c1, "x")
		buf := []byte("payload")
		for i := 0; i < 100; i++ {
			fc.Write(buf)
		}
		fc.Close()
		return p.Counts()
	}
	a, b := counts(), counts()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("two identical runs diverged: %v vs %v", a, b)
	}
	// 100 writes at 1/10: the conn latches dead at the first reset, so
	// exactly one fires.
	if a["reset"] != 1 {
		t.Fatalf("want 1 reset, got %v", a)
	}
}

func TestStrideRateOverFreshConns(t *testing.T) {
	// A fresh conn per op (the client redials after each reset), 1/10
	// rate over 100 writes → exactly 10 resets regardless of seed phase.
	p := MustParse("seed=9;reset=1/10")
	var resets int
	for i := 0; i < 100; i++ {
		c1, c2 := net.Pipe()
		go io.Copy(io.Discard, c2)
		fc := p.WrapConn(c1, "x")
		if _, err := fc.Write([]byte("op")); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("unexpected error: %v", err)
			}
			resets++
		}
		fc.Close()
		c2.Close()
	}
	if resets != 10 {
		t.Fatalf("want 10 resets over 100 ops, got %d", resets)
	}
	if p.Counts()["reset"] != 10 {
		t.Fatalf("counter disagrees: %v", p.Counts())
	}
}

func TestSeedMovesPhase(t *testing.T) {
	firstFire := func(seed uint64) int {
		p := MustParse(fmt.Sprintf("seed=%d;reset=1/64", seed))
		for i := 0; ; i++ {
			if p.fire(kindReset, "") {
				return i
			}
		}
	}
	a := firstFire(1)
	for seed := uint64(2); seed < 12; seed++ {
		if firstFire(seed) != a {
			return // phases differ → seed is live
		}
	}
	t.Fatalf("phase identical across 11 seeds; seed not wired into schedule")
}

func TestResetLatchesConnDead(t *testing.T) {
	p := MustParse("reset=1/1")
	c1, c2 := net.Pipe()
	defer c2.Close()
	fc := p.WrapConn(c1, "x")
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("first write: want injected reset, got %v", err)
	}
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("dead conn write: want injected reset, got %v", err)
	}
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("dead conn read: want injected reset, got %v", err)
	}
	if p.Counts()["reset"] != 1 {
		t.Fatalf("latched conn recounted: %v", p.Counts())
	}
}

func TestPartialWrite(t *testing.T) {
	p := MustParse("partial=1/1")
	c1, c2 := net.Pipe()
	got := make(chan int, 1)
	go func() {
		b, _ := io.ReadAll(c2)
		got <- len(b)
	}()
	fc := p.WrapConn(c1, "x")
	payload := make([]byte, 64)
	n, err := fc.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected partial, got %v", err)
	}
	if n != len(payload)/2 {
		t.Fatalf("want short count %d, got %d", len(payload)/2, n)
	}
	if onWire := <-got; onWire != len(payload)/2 {
		t.Fatalf("peer saw %d bytes, want %d", onWire, len(payload)/2)
	}
}

func TestCorruptRead(t *testing.T) {
	p := MustParse("corrupt=1/1")
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	orig := []byte("hello fragment")
	go c2.Write(orig)
	fc := p.WrapConn(c1, "x")
	buf := make([]byte, len(orig))
	if _, err := io.ReadFull(fc, buf); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range buf {
		if buf[i] != orig[i] {
			diff++
		}
	}
	// Every read call corrupts one byte; ReadFull over a pipe may take
	// one or more reads but must clobber at least one byte.
	if diff == 0 {
		t.Fatalf("corrupt=1/1 read arrived intact")
	}
	if p.Counts()["corrupt"] == 0 {
		t.Fatalf("no corruption counted: %v", p.Counts())
	}
}

func TestLatencyInjection(t *testing.T) {
	p := MustParse("latency=20ms")
	c1, c2 := net.Pipe()
	defer c2.Close()
	go io.Copy(io.Discard, c2)
	fc := p.WrapConn(c1, "x")
	start := time.Now() //lint:allow detclock test measures the injected real delay
	fc.Write([]byte("x"))
	if d := time.Since(start); d < 15*time.Millisecond { //lint:allow detclock test measures the injected real delay
		t.Fatalf("latency=20ms write returned in %v", d)
	}
	if p.Counts()["latency"] == 0 {
		t.Fatalf("no latency counted")
	}
}

func TestDialRefusal(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	p := MustParse("refuse=1/2")
	var refused, okDials int
	for i := 0; i < 10; i++ {
		c, err := p.Dial("client", "tcp", ln.Addr().String(), time.Second)
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("organic dial error: %v", err)
			}
			refused++
			continue
		}
		c.Close()
		okDials++
	}
	if refused != 5 || okDials != 5 {
		t.Fatalf("refuse=1/2 over 10 dials: refused=%d ok=%d", refused, okDials)
	}
}

func TestListenerWrapsAccepted(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := MustParse("reset=1/1")
	fln := p.WrapListener(ln, "srv0")
	defer fln.Close()
	done := make(chan error, 1)
	go func() {
		c, err := fln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		_, err = c.Write([]byte("x"))
		done <- err
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := <-done; !errors.Is(err, ErrInjected) {
		t.Fatalf("accepted conn not fault-wrapped: write err = %v", err)
	}
}

func TestCrashSchedule(t *testing.T) {
	p := MustParse("crash=srv1@10+4;crash=srv0@2+3")
	want := []Event{
		{Op: 2, Scope: "srv0", Kind: ServerDown},
		{Op: 5, Scope: "srv0", Kind: ServerUp},
		{Op: 10, Scope: "srv1", Kind: ServerDown},
		{Op: 14, Scope: "srv1", Kind: ServerUp},
	}
	got := p.Events()
	if len(got) != len(want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSSDFailTriggers(t *testing.T) {
	p := MustParse("ssdfail=srv0@3;ssdfail=srv2@250ms")
	if n, ok := p.SSDFailWrites("srv0"); !ok || n != 3 {
		t.Fatalf("SSDFailWrites(srv0) = %d,%v", n, ok)
	}
	if _, ok := p.SSDFailWrites("srv1"); ok {
		t.Fatalf("srv1 has no schedule")
	}
	if d, ok := p.SSDFailAt("srv2"); !ok || d != 250*time.Millisecond {
		t.Fatalf("SSDFailAt(srv2) = %v,%v", d, ok)
	}
	if _, ok := p.SSDFailAt("srv0"); ok {
		t.Fatalf("srv0 schedule is count-based, not time-based")
	}
}

// memStore is a minimal Store for exercising WrapStore.
type memStore struct{ data map[uint64][]byte }

func (m *memStore) WriteAt(id uint64, off int64, data []byte) error {
	b := m.data[id]
	for int64(len(b)) < off+int64(len(data)) {
		b = append(b, 0)
	}
	copy(b[off:], data)
	m.data[id] = b
	return nil
}

func (m *memStore) ReadAt(id uint64, off int64, n int64) ([]byte, error) {
	b := m.data[id]
	if off+n > int64(len(b)) {
		return nil, io.ErrUnexpectedEOF
	}
	return append([]byte(nil), b[off:off+n]...), nil
}

func (m *memStore) Size(id uint64) (int64, error) { return int64(len(m.data[id])), nil }
func (m *memStore) Close() error                  { return nil }

func TestWrapStoreFailsAfterN(t *testing.T) {
	p := MustParse("ssdfail=srv0@3")
	var drained bool
	s := p.WrapStore(&memStore{data: map[uint64][]byte{}}, "srv0", func() { drained = true })
	if s.WriteAt(1, 0, []byte("a")) != nil || s.WriteAt(1, 1, []byte("b")) != nil {
		t.Fatalf("writes before the trigger must succeed")
	}
	if err := s.WriteAt(1, 2, []byte("c")); !errors.Is(err, ErrSSDFailed) {
		t.Fatalf("3rd write: want ErrSSDFailed, got %v", err)
	}
	if !drained {
		t.Fatalf("onFail hook did not run")
	}
	if _, err := s.ReadAt(1, 0, 1); !errors.Is(err, ErrSSDFailed) {
		t.Fatalf("post-failure read: want ErrSSDFailed, got %v", err)
	}
	if !errors.Is(ErrSSDFailed, ErrInjected) {
		t.Fatalf("ErrSSDFailed must wrap ErrInjected")
	}
	if p.Counts()["ssdfail"] != 1 {
		t.Fatalf("counts = %v", p.Counts())
	}
	// Unscoped stores pass through unwrapped.
	base := &memStore{data: map[uint64][]byte{}}
	if got := p.WrapStore(base, "srv9", nil); got != Store(base) {
		t.Fatalf("unscheduled scope got wrapped")
	}
}

func TestObsMirroring(t *testing.T) {
	p := MustParse("reset=1/1")
	reg := obs.NewRegistry()
	p.SetObs(reg)
	c1, c2 := net.Pipe()
	defer c2.Close()
	fc := p.WrapConn(c1, "x")
	fc.Write([]byte("x"))
	if v := reg.Counter("faults.injected.reset").Value(); v != 1 {
		t.Fatalf("faults.injected.reset = %d, want 1", v)
	}
}

func TestCountsString(t *testing.T) {
	p := MustParse("reset=1/1")
	if s := p.CountsString(); s != "none" {
		t.Fatalf("fresh plan CountsString = %q", s)
	}
	p.note(kindReset, "")
	p.note(kindCrash, "")
	if s := p.CountsString(); s != "crash=1 reset=1" {
		t.Fatalf("CountsString = %q", s)
	}
}
