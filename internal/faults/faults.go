// Package faults is the deterministic fault-injection subsystem: a Plan,
// parsed from a compact spec string and seeded like every other stochastic
// element of the repo, schedules injectable failures — connection resets,
// dial refusals, read/write latency, partial writes, frame corruption,
// server crash/restart, and SSD-device failure — and injects them through
// wrappers (net.Conn, net.Listener, a dial hook, and an object-store
// shim) so the production code paths under test run unmodified.
//
// A nil *Plan disarms everything: every wrapper method returns its input
// unchanged and every probe is a single nil test, the same
// zero-cost-when-off contract as internal/obs.
//
// # Spec grammar
//
// A spec is a semicolon-separated list of clauses:
//
//	seed=N                     plan seed (default 1)
//	reset=RATE                 injected connection resets on conn writes
//	refuse=RATE                injected dial refusals
//	partial=RATE               short write then reset, on conn writes
//	corrupt=RATE               clobber a byte of a conn read
//	latency=[SCOPE:]DUR[-DUR][@RATE]
//	                           added delay per conn read/write (default every
//	                           op); with a SCOPE: prefix only that endpoint's
//	                           conns are delayed — the knob that makes one
//	                           server a straggler
//	crash=SCOPE@OP+DOWN        sever SCOPE before driver op OP, restart DOWN ops later
//	ssdfail=SCOPE@N            fail SCOPE's SSD after N fragment-log writes
//	ssdfail=SCOPE@DUR          fail SCOPE's SSD at simulated time DUR (sim clusters)
//
// RATE is a percentage ("1%", "0.5%") or a ratio ("1/200"). SCOPE names
// the wrapped endpoint ("srv0", "client", ...); rate clauses apply to
// every scope. Repeated crash/ssdfail clauses accumulate.
//
// # Determinism
//
// Rate faults fire on a stride schedule, not a coin flip: a rate of 1/k
// converts to "every k-th eligible operation", with the phase inside the
// stride drawn from the plan seed. Eligible operations are counted by a
// per-kind atomic counter, and reset/partial injection counts only
// conn *writes* (whose count is a pure function of the protocol traffic),
// never reads (whose count depends on TCP segmentation). Crash events are
// indexed by driver operation number and SSD failures by fragment-write
// count or simulated time. Wall-clock time therefore never influences
// *which* faults fire — two runs of a sequential workload under the same
// plan inject identical fault counts — while injected latency (the one
// real-timer effect) changes only when things happen, not what happens.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrInjected is the parent of every error the injector fabricates;
// callers and tests distinguish injected failures from organic ones with
// errors.Is(err, faults.ErrInjected).
var ErrInjected = errors.New("faults: injected failure")

var (
	errReset   = fmt.Errorf("connection reset (%w)", ErrInjected)
	errRefused = fmt.Errorf("dial refused (%w)", ErrInjected)
	errPartial = fmt.Errorf("partial write (%w)", ErrInjected)
)

// kind indexes the rate-driven fault kinds.
type kind int

const (
	kindReset kind = iota
	kindRefuse
	kindPartial
	kindCorrupt
	kindLatency
	kindCrash
	kindSSDFail
	numKinds
)

var kindNames = [numKinds]string{
	"reset", "refuse", "partial", "corrupt", "latency", "crash", "ssdfail",
}

// rateRule is one armed stride schedule: the fault fires on every
// eligible operation whose per-kind index is ≡ phase (mod period).
type rateRule struct {
	period uint64 // 0 = disarmed
	phase  uint64
}

// EventKind is a scheduled state change executed by the test driver.
type EventKind int

const (
	// ServerDown severs the scoped server before the indexed driver op.
	ServerDown EventKind = iota
	// ServerUp restarts the scoped server before the indexed driver op.
	ServerUp
)

func (k EventKind) String() string {
	if k == ServerDown {
		return "down"
	}
	return "up"
}

// Event is one crash-schedule entry: before driver operation Op, the
// driver applies Kind to the server named Scope. The injector cannot
// restart a process itself, so crash/restart is surfaced as a schedule
// the owning harness executes between operations — which is also what
// keeps it deterministic.
type Event struct {
	Op    int
	Scope string
	Kind  EventKind
}

// ssdFailRule is one armed SSD-device failure.
type ssdFailRule struct {
	scope string
	// writes, when > 0, triggers after that many fragment-log writes.
	writes int64
	// at, when > 0, triggers at that simulated time (sim clusters).
	at time.Duration
}

// Plan is an armed, seeded fault schedule. The zero value is not useful;
// build one with Parse. A nil *Plan is fully disarmed and safe to use.
type Plan struct {
	seed uint64
	spec string

	rates        [numKinds]rateRule
	latencyLo    time.Duration
	latencyHi    time.Duration
	latencyScope string // "" = every scope

	events   []Event
	ssdFails []ssdFailRule

	ops      [numKinds]atomic.Uint64 // eligible-operation counters
	injected [numKinds]atomic.Int64  // fired-fault counters

	reg    atomic.Pointer[obs.Registry]
	tracer atomic.Pointer[obs.XTracer]
}

// Parse builds a Plan from a spec string (see the package comment for
// the grammar). An empty spec yields a valid plan with nothing armed.
func Parse(spec string) (*Plan, error) {
	p := &Plan{seed: 1, spec: spec}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("faults: clause %q: want key=value", clause)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			p.seed, err = strconv.ParseUint(val, 10, 64)
		case "reset":
			err = p.setRate(kindReset, val)
		case "refuse":
			err = p.setRate(kindRefuse, val)
		case "partial":
			err = p.setRate(kindPartial, val)
		case "corrupt":
			err = p.setRate(kindCorrupt, val)
		case "latency":
			err = p.parseLatency(val)
		case "crash":
			err = p.parseCrash(val)
		case "ssdfail":
			err = p.parseSSDFail(val)
		default:
			return nil, fmt.Errorf("faults: unknown clause %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("faults: clause %q: %w", clause, err)
		}
	}
	// Phases depend on the seed, which any clause order may set last.
	for k := kind(0); k < numKinds; k++ {
		if p.rates[k].period > 1 {
			p.rates[k].phase = splitmix(p.seed^uint64(k)*0x9E3779B97F4A7C15) % p.rates[k].period
		}
	}
	sort.SliceStable(p.events, func(i, j int) bool { return p.events[i].Op < p.events[j].Op })
	return p, nil
}

// MustParse is Parse for tests and examples with hard-coded specs.
func MustParse(spec string) *Plan {
	p, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// setRate arms kind k at the parsed rate.
func (p *Plan) setRate(k kind, val string) error {
	period, err := parseRate(val)
	if err != nil {
		return err
	}
	p.rates[k].period = period
	return nil
}

// parseRate converts "1%", "0.5%", or "1/200" to a stride period.
func parseRate(s string) (uint64, error) {
	if num, den, ok := strings.Cut(s, "/"); ok {
		n, err1 := strconv.ParseUint(strings.TrimSpace(num), 10, 64)
		d, err2 := strconv.ParseUint(strings.TrimSpace(den), 10, 64)
		if err1 != nil || err2 != nil || n == 0 || d == 0 || d < n {
			return 0, fmt.Errorf("bad ratio %q", s)
		}
		return d / n, nil
	}
	pct, ok := strings.CutSuffix(s, "%")
	if !ok {
		return 0, fmt.Errorf("rate %q: want N%% or 1/N", s)
	}
	f, err := strconv.ParseFloat(pct, 64)
	if err != nil || f <= 0 || f > 100 {
		return 0, fmt.Errorf("bad percentage %q", s)
	}
	return uint64(100/f + 0.5), nil
}

// parseLatency parses [SCOPE:]DUR[-DUR][@RATE].
func (p *Plan) parseLatency(val string) error {
	// A scope prefix is unambiguous: durations never contain ':'.
	if scope, rest, ok := strings.Cut(val, ":"); ok {
		p.latencyScope = strings.TrimSpace(scope)
		val = rest
	}
	rate := uint64(1) // default: every op
	if dur, r, ok := strings.Cut(val, "@"); ok {
		var err error
		if rate, err = parseRate(r); err != nil {
			return err
		}
		val = dur
	}
	lo, hi, hasRange := strings.Cut(val, "-")
	dlo, err := time.ParseDuration(lo)
	if err != nil {
		return err
	}
	dhi := dlo
	if hasRange {
		if dhi, err = time.ParseDuration(hi); err != nil {
			return err
		}
	}
	if dlo < 0 || dhi < dlo {
		return fmt.Errorf("bad latency range %v-%v", dlo, dhi)
	}
	p.latencyLo, p.latencyHi = dlo, dhi
	p.rates[kindLatency].period = rate
	return nil
}

// parseCrash parses SCOPE@OP+DOWN into a down/up event pair.
func (p *Plan) parseCrash(val string) error {
	scope, sched, ok := strings.Cut(val, "@")
	if !ok {
		return fmt.Errorf("crash %q: want SCOPE@OP+DOWN", val)
	}
	at, down, ok := strings.Cut(sched, "+")
	if !ok {
		return fmt.Errorf("crash %q: want SCOPE@OP+DOWN", val)
	}
	op, err1 := strconv.Atoi(strings.TrimSpace(at))
	d, err2 := strconv.Atoi(strings.TrimSpace(down))
	if err1 != nil || err2 != nil || op < 0 || d <= 0 {
		return fmt.Errorf("crash %q: bad op indices", val)
	}
	p.events = append(p.events,
		Event{Op: op, Scope: scope, Kind: ServerDown},
		Event{Op: op + d, Scope: scope, Kind: ServerUp})
	return nil
}

// parseSSDFail parses SCOPE@N (fragment writes) or SCOPE@DUR (sim time).
func (p *Plan) parseSSDFail(val string) error {
	scope, trigger, ok := strings.Cut(val, "@")
	if !ok {
		return fmt.Errorf("ssdfail %q: want SCOPE@N or SCOPE@DUR", val)
	}
	if n, err := strconv.ParseInt(trigger, 10, 64); err == nil {
		if n <= 0 {
			return fmt.Errorf("ssdfail %q: want a positive write count", val)
		}
		p.ssdFails = append(p.ssdFails, ssdFailRule{scope: scope, writes: n})
		return nil
	}
	d, err := time.ParseDuration(trigger)
	if err != nil || d <= 0 {
		return fmt.Errorf("ssdfail %q: trigger is neither a count nor a duration", val)
	}
	p.ssdFails = append(p.ssdFails, ssdFailRule{scope: scope, at: d})
	return nil
}

// Seed returns the plan seed.
func (p *Plan) Seed() uint64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// String returns the spec the plan was parsed from.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	return p.spec
}

// SetObs mirrors the injected-fault counters into reg under
// "faults.injected.*". Safe on a nil plan.
func (p *Plan) SetObs(reg *obs.Registry) {
	if p != nil {
		p.reg.Store(reg)
	}
}

// SetTracer mirrors every injected fault into tr as a "fault.<kind>"
// instant event, so a merged trace shows exactly where the injections
// landed among the request spans. The timestamp is taken inside obs
// (InstantNow): this package stays off the deterministic-clock surface.
// Safe on a nil plan.
func (p *Plan) SetTracer(tr *obs.XTracer) {
	if p != nil {
		p.tracer.Store(tr)
	}
}

// Counts returns the number of injected faults per kind (only kinds that
// fired appear). The internal counters always run, so reproducibility
// checks do not depend on an obs registry being attached.
func (p *Plan) Counts() map[string]int64 {
	out := map[string]int64{}
	if p == nil {
		return out
	}
	for k := kind(0); k < numKinds; k++ {
		if n := p.injected[k].Load(); n > 0 {
			out[kindNames[k]] = n
		}
	}
	return out
}

// CountsString renders Counts in stable order, e.g. "reset=3 crash=2".
func (p *Plan) CountsString() string {
	c := p.Counts()
	names := make([]string, 0, len(c))
	for name := range c {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", name, c[name]))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// Events returns the crash schedule sorted by driver-op index. The
// returned slice is shared; callers must not mutate it.
func (p *Plan) Events() []Event {
	if p == nil {
		return nil
	}
	return p.events
}

// NoteCrash records one executed crash-schedule event (the driver applies
// them, so the driver reports them).
func (p *Plan) NoteCrash() {
	if p != nil {
		p.note(kindCrash, "")
	}
}

// SSDFailWrites returns the fragment-write count at which scope's SSD
// fails, if a count-triggered ssdfail clause targets it.
func (p *Plan) SSDFailWrites(scope string) (int64, bool) {
	if p == nil {
		return 0, false
	}
	for _, r := range p.ssdFails {
		if r.scope == scope && r.writes > 0 {
			return r.writes, true
		}
	}
	return 0, false
}

// SSDFailAt returns the simulated time at which scope's SSD fails, if a
// duration-triggered ssdfail clause targets it.
func (p *Plan) SSDFailAt(scope string) (time.Duration, bool) {
	if p == nil {
		return 0, false
	}
	for _, r := range p.ssdFails {
		if r.scope == scope && r.at > 0 {
			return r.at, true
		}
	}
	return 0, false
}

// NoteSSDFail records one executed SSD failure.
func (p *Plan) NoteSSDFail() {
	if p != nil {
		p.note(kindSSDFail, "")
	}
}

// latencyApplies reports whether the latency clause targets scope. The
// check runs before fire so the stride schedule counts only eligible
// (in-scope) operations.
func (p *Plan) latencyApplies(scope string) bool {
	return p.latencyScope == "" || p.latencyScope == scope
}

// fire advances kind k's eligible-op counter and reports whether the
// stride schedule injects a fault at this op.
func (p *Plan) fire(k kind, scope string) bool {
	if p == nil {
		return false
	}
	r := p.rates[k]
	if r.period == 0 {
		return false
	}
	n := p.ops[k].Add(1) - 1
	if r.period > 1 && n%r.period != r.phase {
		return false
	}
	p.note(k, scope)
	return true
}

// note counts one injected fault and mirrors it to the obs registry and
// the cross-process tracer.
func (p *Plan) note(k kind, scope string) {
	p.injected[k].Add(1)
	if reg := p.reg.Load(); reg != nil {
		reg.Counter("faults.injected." + kindNames[k]).Inc()
	}
	if tr := p.tracer.Load(); tr != nil {
		tr.InstantNow("fault."+kindNames[k], scope)
	}
}

// latency returns the delay to inject for the n-th latency op: the low
// bound plus a seed-deterministic offset inside the range.
func (p *Plan) latency(n uint64) time.Duration {
	span := int64(p.latencyHi - p.latencyLo)
	if span <= 0 {
		return p.latencyLo
	}
	return p.latencyLo + time.Duration(splitmix(p.seed^0xA5A5A5A5^n)%uint64(span))
}

// Mix64 is the stateless SplitMix64 mix function, exported for callers
// that need deterministic jitter outside any shared generator (the
// pfsnet client's retry backoff draws from it).
func Mix64(x uint64) uint64 { return splitmix(x) }

// splitmix is the repo's SplitMix64 mix function (sim.RNG uses the same
// core); used here statelessly so concurrent injection points never
// contend on shared generator state.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
