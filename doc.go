// Package repro is a reproduction of "iBridge: Improving Unaligned
// Parallel File Access with Solid-State Drives" (Zhang, Liu, Davis,
// Jiang; IPDPS 2013) as a self-contained Go library.
//
// The repository contains:
//
//   - internal/core: iBridge itself — the return-value model (Eqs. 1–3),
//     the SSD cache with its log allocator, mapping table, dynamic
//     two-class partition, and idle writeback;
//   - the substrates it runs on: a deterministic discrete-event engine
//     (internal/sim), device models (internal/hdd, internal/ssd), block
//     schedulers (internal/iosched), a striped parallel file system
//     (internal/stripe, internal/pfs), and an MPI-IO-style layer
//     (internal/mpiio);
//   - a real TCP striped file system with the iBridge fragment protocol
//     (internal/pfsnet) and runnable servers (cmd/pfs-meta,
//     cmd/pfs-server);
//   - the paper's benchmarks and traces (internal/workload,
//     internal/trace) and the full experiment harness that regenerates
//     every table and figure (internal/experiments, cmd/ibridge-bench).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
