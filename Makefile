GO ?= go

.PHONY: all build test race vet bench-smoke cover ci

all: build test vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrency-bearing packages: the parallel experiment
# runner, the simulation engine it fans out, and the pipelined TCP
# client/server.
race:
	$(GO) test -race ./internal/runner/... ./internal/sim/... ./internal/pfsnet/...

vet:
	$(GO) vet ./...

# Quick engine hot-path numbers (events/sec, allocs/op).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine' -benchmem ./internal/sim/

# Coverage across all packages, with an HTML report in cover.html.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -html=cover.out -o cover.html
	$(GO) tool cover -func=cover.out | tail -1

# The full gate: vet, race on the concurrency-bearing packages, the
# regular test suite (which includes the engine alloc-regression guard),
# and the hot-path bench smoke.
ci: vet race test bench-smoke
