GO ?= go

.PHONY: all build test race vet lint bench-smoke cover ci

all: build test vet lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrency-bearing packages: the parallel experiment
# runner, the simulation engine it fans out, the pipelined TCP
# client/server, the cluster harness, and the shared metrics registry.
race:
	$(GO) test -race ./internal/runner/... ./internal/sim/... ./internal/pfsnet/... ./internal/cluster/... ./internal/obs/...

vet:
	$(GO) vet ./...

# Repo-specific invariants (determinism, obs nil-sink discipline, no
# blocking I/O under locks) enforced by the custom multichecker, plus
# staticcheck and govulncheck when they are installed. The multichecker
# is the hard gate; the external tools are best-effort so the target
# works on a bare toolchain.
lint:
	$(GO) run ./cmd/ibridge-vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed; skipping"; \
	fi

# Quick engine hot-path numbers (events/sec, allocs/op).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine' -benchmem ./internal/sim/

# Coverage across all packages, with an HTML report in cover.html.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -html=cover.out -o cover.html
	$(GO) tool cover -func=cover.out | tail -1

# The full gate: vet, the invariant lint suite, race on the
# concurrency-bearing packages, the regular test suite (which includes
# the engine alloc-regression guard), and the hot-path bench smoke.
ci: vet lint race test bench-smoke
