GO ?= go

.PHONY: all build test race vet lint lint-tools bench-smoke bench-json bench-check chaos-smoke cover ci

all: build test vet lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check every internal package. The concurrency-bearing ones (the
# parallel experiment runner, the simulation engine it fans out, the
# pipelined TCP client/server, the cluster harness, the fault injector,
# the metrics registry) are where races live, but a blanket ./internal/...
# means a new package can never silently ship outside the race gate.
race:
	$(GO) test -race ./internal/...

vet:
	$(GO) vet ./...

# Pinned external lint tool versions. `make lint-tools` installs
# exactly these, so CI and developer machines run the same checks;
# bump the pins deliberately, in their own commit.
STATICCHECK_VERSION ?= 2025.1
GOVULNCHECK_VERSION ?= v1.1.4

lint-tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

# Repo-specific invariants (determinism, obs nil-sink discipline, no
# blocking I/O under locks, atomic/plain mixing, lock ordering,
# goroutine shutdown paths, feature-gated protocol ops) enforced by the
# custom multichecker, plus staticcheck and govulncheck when they are
# installed (at the pinned versions above, via `make lint-tools`). The
# multichecker is the hard gate; the external tools are best-effort so
# the target works on a bare toolchain. `ibridge-vet -json` emits the
# same findings machine-readably for CI annotation.
lint:
	$(GO) run ./cmd/ibridge-vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; run 'make lint-tools' to install $(STATICCHECK_VERSION); skipping"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed; run 'make lint-tools' to install $(GOVULNCHECK_VERSION); skipping"; \
	fi

# Quick engine hot-path numbers (events/sec, allocs/op).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine' -benchmem ./internal/sim/

# Benchmark trajectory artifact: run the loopback wire benchmarks plus
# the logstore append/replay pair, time a full (smoke-scale) paper
# evaluation, and snapshot everything into BENCH_$(PR).json for
# committing. Each perf-focused PR bumps PR= and commits its own
# snapshot; bench-check then gates the trajectory.
PR ?= 10
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkPfsnet' -benchmem -benchtime 2s ./internal/pfsnet/ | tee bench-raw.txt
	$(GO) test -run '^$$' -bench 'BenchmarkLogStore' -benchmem -benchtime 2s ./internal/logstore/ | tee -a bench-raw.txt
	$(GO) run ./cmd/ibridge-benchdiff -emit -pr $(PR) \
		-wallcmd '$(GO) run ./cmd/ibridge-bench -exp all -scale smoke' \
		< bench-raw.txt > BENCH_$(PR).json
	@rm -f bench-raw.txt
	@echo "wrote BENCH_$(PR).json"

# Regression gate over the committed snapshots: the newest BENCH_*.json
# must stay within 5% of its predecessor on allocs/op (exactly
# reproducible anywhere) and within the 40% noise threshold on the
# timing-bound metrics (ns/op, MB/s, B/op, wall clock — shared CI hosts
# swing these ±30% with zero code change, so the timing gate catches
# catastrophes while the alloc gate stays tight). A no-op until two
# snapshots are committed.
bench-check:
	$(GO) run ./cmd/ibridge-benchdiff -compare $(wildcard BENCH_*.json)

# Chaos gate: the live TCP cluster under a canned fault plan (one server
# crash+restart plus 1% connection resets) must complete with every byte
# verified, and two runs of the same plan must print an identical chaos
# summary — injected-fault and retry/breaker counts reproducible from
# the seed. The first run also records per-process trace spans (span
# counts are timing-dependent, so they print before the summary and stay
# out of the reproducibility diff); the merged Chrome trace lands in
# chaos-trace.json for chrome://tracing and is uploaded as a CI artifact.
# The same plan then runs against log-backed (crash-consistent) servers,
# and the kill-at-every-Kth-op recovery loop (cmd/logstore-chaos) crashes
# a logstore mid-append on every Kth write, reopens, replays, and
# byte-verifies — its RECOVERY SUMMARY stays in recovery-summary.txt for
# the CI artifact upload and must also be run-to-run identical.
CHAOS_PLAN = seed=42; reset=1%; crash=srv1@60+60
# Hedge gate: the straggler walkthrough (every primary conn op delayed,
# hedge conns fast) must verify every byte and print an identical HEDGE
# SUMMARY across two runs — armed/fired/won/cancelled counts
# reproducible from the plan seed.
HEDGE_PLAN = seed=7; latency=client:150ms
chaos-smoke:
	$(GO) run ./examples/livecluster -faults '$(CHAOS_PLAN)' -spans-dir chaos-spans | sed -n '/CHAOS SUMMARY/,$$p' > chaos-run1.txt
	$(GO) run ./examples/livecluster -faults '$(CHAOS_PLAN)' | sed -n '/CHAOS SUMMARY/,$$p' > chaos-run2.txt
	@grep -q 'chaos: completed, data verified' chaos-run1.txt || { echo "chaos-smoke: run did not complete"; exit 1; }
	@diff chaos-run1.txt chaos-run2.txt || { echo "chaos-smoke: summaries differ across identical runs"; exit 1; }
	$(GO) run ./cmd/ibridge-trace -merge -o chaos-trace.json chaos-spans/*.spans
	@echo "chaos-smoke: completed, byte-verified, reproducible:"; cat chaos-run1.txt
	@echo "chaos-smoke: merged trace in chaos-trace.json (load in chrome://tracing)"
	@rm -rf chaos-spans chaos-run1.txt chaos-run2.txt
	$(GO) run ./examples/livecluster -hedge -ops 40 -faults '$(HEDGE_PLAN)' | sed -n '/HEDGE SUMMARY/,$$p' > hedge-run1.txt
	$(GO) run ./examples/livecluster -hedge -ops 40 -faults '$(HEDGE_PLAN)' | sed -n '/HEDGE SUMMARY/,$$p' > hedge-run2.txt
	@grep -q 'hedge: completed, data verified' hedge-run1.txt || { echo "chaos-smoke: hedged run did not complete"; exit 1; }
	@diff hedge-run1.txt hedge-run2.txt || { echo "chaos-smoke: hedge summaries differ across identical runs"; exit 1; }
	@echo "chaos-smoke: hedged run byte-verified, reproducible:"; cat hedge-run1.txt
	@rm -f hedge-run1.txt hedge-run2.txt
	$(GO) run ./examples/livecluster -faults '$(CHAOS_PLAN)' -store log | sed -n '/CHAOS SUMMARY/,$$p' > chaos-log-run1.txt
	$(GO) run ./examples/livecluster -faults '$(CHAOS_PLAN)' -store log | sed -n '/CHAOS SUMMARY/,$$p' > chaos-log-run2.txt
	@grep -q 'chaos: completed, data verified' chaos-log-run1.txt || { echo "chaos-smoke: log-store run did not complete"; exit 1; }
	@diff chaos-log-run1.txt chaos-log-run2.txt || { echo "chaos-smoke: log-store summaries differ across identical runs"; exit 1; }
	@echo "chaos-smoke: log-store cluster byte-verified, reproducible:"; cat chaos-log-run1.txt
	@rm -f chaos-log-run1.txt chaos-log-run2.txt
	$(GO) run ./cmd/logstore-chaos | sed -n '/RECOVERY SUMMARY/,$$p' > recovery-summary.txt
	$(GO) run ./cmd/logstore-chaos | sed -n '/RECOVERY SUMMARY/,$$p' > recovery-run2.txt
	@grep -q 'zero data loss' recovery-summary.txt || { echo "chaos-smoke: recovery loop did not complete"; exit 1; }
	@diff recovery-summary.txt recovery-run2.txt || { echo "chaos-smoke: recovery summaries differ across identical runs"; exit 1; }
	@echo "chaos-smoke: kill-at-every-Kth-op recovery loop byte-verified, reproducible:"; cat recovery-summary.txt
	@rm -f recovery-run2.txt

# Coverage across all packages, with an HTML report in cover.html.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -html=cover.out -o cover.html
	$(GO) tool cover -func=cover.out | tail -1

# The full gate: vet, the invariant lint suite, race on the
# concurrency-bearing packages, the regular test suite (which includes
# the engine alloc-regression guard), the hot-path bench smoke, the
# committed-benchmark regression gate, and the chaos smoke
# (fault-injected live cluster, reproducible summary).
ci: vet lint race test bench-smoke bench-check chaos-smoke
