GO ?= go

.PHONY: all build test race vet bench-smoke

all: build test vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrency-bearing packages: the parallel experiment
# runner and the simulation engine it fans out.
race:
	$(GO) test -race ./internal/runner/... ./internal/sim/...

vet:
	$(GO) vet ./...

# Quick engine hot-path numbers (events/sec, allocs/op).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine' -benchmem ./internal/sim/
