// Heterogeneous workloads: run mpi-io-test (large unaligned writes →
// fragments) concurrently with BTIO (tiny writes → regular random
// requests) and compare iBridge's dynamic SSD partitioning against static
// splits — the paper's Section III-F experiment.
//
// Run with: go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	const (
		mpiBytes  = 64 * workload.MB
		btioBytes = 32 * workload.MB
	)
	run := func(mode cluster.Mode, dynamic bool, fragShare float64) (mpiT, btioT float64) {
		cfg := cluster.DefaultConfig()
		cfg.Mode = mode
		// Size the SSD below the combined candidate working set so the
		// partition decision matters.
		cfg.IBridge.SSDCapacity = (mpiBytes/10 + btioBytes) / 8 / 2
		cfg.IBridge.DynamicPartition = dynamic
		cfg.IBridge.StaticFragShare = fragShare
		c, err := cluster.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		mpiRep := &workload.Report{}
		var bt workload.BTIOResult
		mpi := workload.MPIIOTest(workload.MPIIOTestConfig{
			Procs: 64, RequestSize: 65 * workload.KB, Write: true,
			FileBytes: mpiBytes, Jitter: workload.DefaultJitter, Report: mpiRep,
		})
		btio := workload.BTIO(workload.BTIOConfig{
			Procs: 64, DataBytes: btioBytes, Steps: 4,
			ComputePerStep: 2 * sim.Second,
		}, &bt)
		if _, err := c.Run(workload.Combine(mpi, btio)); err != nil {
			log.Fatal(err)
		}
		mpiT = float64(mpiRep.Bytes) / mpiRep.Elapsed().Seconds() / 1e6
		btioT = float64(btioBytes) / bt.IOTime.Seconds() / 1e6
		return mpiT, btioT
	}

	fmt.Println("concurrent mpi-io-test (65KB writes) + BTIO (tiny writes):")
	fmt.Printf("%-22s %12s %10s %11s\n", "config", "mpi-io-test", "BTIO", "aggregate")
	for _, c := range []struct {
		name      string
		mode      cluster.Mode
		dynamic   bool
		fragShare float64
	}{
		{"stock (no SSD)", cluster.Stock, false, 0},
		{"static 1:1", cluster.IBridge, false, 0.5},
		{"static 1:2", cluster.IBridge, false, 2.0 / 3.0},
		{"dynamic (iBridge)", cluster.IBridge, true, 0},
	} {
		m, b := run(c.mode, c.dynamic, c.fragShare)
		fmt.Printf("%-22s %9.1f MB/s %7.1f MB/s %8.1f MB/s\n", c.name, m, b, m+b)
	}
}
