// Live cluster: start a real pfsnet metadata server and four data servers
// over TCP in-process, then do striped file I/O through the network
// client — including an unaligned write whose fragment takes the iBridge
// log path at its data server.
//
// Run with: go run ./examples/livecluster
//
// With -faults the demo becomes a deterministic chaos walkthrough: the
// plan's connection faults are injected into the client's conns, crash
// events (crash=srvN@OP+DOWN) stop and restart data servers at fixed
// operation indexes, and SSD-failure clauses (ssdfail=srvN@WRITES)
// degrade a server's fragment log mid-run. The driver issues a fixed
// sequence of writes, re-issues any that failed while a server was down,
// and verifies every byte at the end; the chaos summary it prints is
// reproducible from the plan seed:
//
//	go run ./examples/livecluster -faults 'seed=42; reset=1%; crash=srv1@60+60'
//
// With -spans-dir the chaos run also records cross-process trace spans:
// the client and every data server get their own obs.XTracer (the same
// wiring a real deployment gets from pfs-server -span-file), trace
// contexts propagate over the negotiated v2 wire extension, and one
// span file per logical process lands in the directory. Merge them with
//
//	ibridge-trace -merge -o chaos-trace.json dir/client.spans dir/srv*.spans
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/logstore"
	"repro/internal/obs"
	"repro/internal/pfsnet"
)

const (
	nServers   = 4
	stripeUnit = 64 * 1024
	// blockLen is deliberately unaligned so every block spills a
	// fragment onto the next server.
	blockLen = 65 * 1024
)

func main() {
	faultSpec := flag.String("faults", "", "deterministic fault plan (see internal/faults); enables the chaos walkthrough")
	ops := flag.Int("ops", 200, "chaos mode: number of sequential block writes")
	storeKind := flag.String("store", "file", "chaos mode: per-server backing store, file or log (crash-consistent logstore; DESIGN §14)")
	spansDir := flag.String("spans-dir", "", "chaos mode: write per-process span files (client.spans, srvN.spans) here; merge with 'ibridge-trace -merge'")
	hedge := flag.Bool("hedge", false, "run the hedged-read walkthrough instead: straggling primaries, hedged re-issues, loser cancellation")
	hedgeDelay := flag.Duration("hedge-delay", 5*time.Millisecond, "hedge mode: fixed hedge timer (0 = adaptive from the latency sketch)")
	hedgeQuantile := flag.Float64("hedge-quantile", 0, "hedge mode: sketch quantile arming the adaptive hedge timer (0 = default 0.95)")
	hedgeBudget := flag.Int("hedge-budget", 0, "hedge mode: max outstanding hedges (0 = default 16, negative = uncapped)")
	flag.Parse()
	if *hedge {
		spec := *faultSpec
		if spec == "" {
			// Every primary-conn op sleeps; hedge conns (scope
			// "client-hedge") stay fast, so every read hedges and wins.
			spec = "seed=1; latency=client:150ms"
		}
		plan, err := faults.Parse(spec)
		if err != nil {
			log.Fatal(err)
		}
		hedged(plan, *ops, *hedgeDelay, *hedgeQuantile, *hedgeBudget)
		return
	}
	if *faultSpec == "" {
		demo()
		return
	}
	plan, err := faults.Parse(*faultSpec)
	if err != nil {
		log.Fatal(err)
	}
	if *storeKind != "file" && *storeKind != "log" {
		log.Fatalf("livecluster: unknown -store %q (want file or log)", *storeKind)
	}
	chaos(plan, *ops, *spansDir, *storeKind)
}

// demo is the original fault-free walkthrough.
func demo() {
	// Start four iBridge-enabled data servers on ephemeral ports.
	var dataAddrs []string
	var servers []*pfsnet.DataServer
	for i := 0; i < nServers; i++ {
		ds, err := pfsnet.NewDataServer("127.0.0.1:0", true)
		if err != nil {
			log.Fatal(err)
		}
		defer ds.Close()
		servers = append(servers, ds)
		dataAddrs = append(dataAddrs, ds.Addr())
		fmt.Printf("data server %d on %s\n", i, ds.Addr())
	}

	// Metadata server with a 64 KB striping unit.
	ms, err := pfsnet.NewMetaServer("127.0.0.1:0", stripeUnit, dataAddrs)
	if err != nil {
		log.Fatal(err)
	}
	defer ms.Close()
	fmt.Printf("metadata server on %s\n\n", ms.Addr())

	// An iBridge client: sub-requests below 20 KB that belong to larger
	// striped parents are flagged as fragments on the wire. All
	// connections negotiate wire protocol v2, so sub-requests multiplex
	// over pipelined connections; the obs registry collects the
	// client-side wire metrics (frames, bytes, in-flight depth).
	reg := obs.NewRegistry()
	client := pfsnet.NewIBridgeClient(ms.Addr(), 20*1024, 20*1024)
	client.Obs = reg
	defer client.Close()

	f, err := client.Create("demo", 10<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created %q: %d bytes striped over %d servers (unit %d)\n",
		f.Name, f.Size, f.Layout().Servers, f.Layout().Unit)

	// A 65 KB write: 64 KB to server 0 plus a 1 KB fragment to server 1.
	payload := bytes.Repeat([]byte("iBridge!"), 65*1024/8)
	if err := client.WriteAt(f, 0, payload); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d bytes at offset 0 (unaligned: generates a 1KB fragment)\n", len(payload))

	// Read it back across the servers and verify.
	got := make([]byte, len(payload))
	if err := client.ReadAt(f, 0, got); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		log.Fatal("data mismatch")
	}
	fmt.Println("read back and verified byte-for-byte")

	fmt.Println("\nper-server statistics:")
	for i, ds := range servers {
		st := ds.Stats()
		fmt.Printf("  server %d: %d writes (%d via fragment log, %d log bytes), %d reads\n",
			i, st.Writes, st.FragmentWrites, st.LogBytes, st.Reads)
	}

	fmt.Println("\nclient wire metrics:")
	fmt.Print(reg.Render())
}

// hedged is the straggler walkthrough: the plan's client-scoped latency
// slows every primary data connection while the hedge connections
// (fault scope "client-hedge") stay fast, so each sub-read's hedge
// timer fires, the re-issue wins, and the straggling primary is
// cancelled. Data is seeded through an unplanned client, read back
// hedged, and verified byte-for-byte; the HEDGE SUMMARY it prints is
// reproducible from the plan seed.
func hedged(plan *faults.Plan, ops int, delay time.Duration, quantile float64, budget int) {
	fmt.Printf("hedge plan: %s (seed %d)\n", plan.String(), plan.Seed())
	var dataAddrs []string
	var servers []*pfsnet.DataServer
	for i := 0; i < nServers; i++ {
		ds, err := pfsnet.NewDataServer("127.0.0.1:0", true)
		if err != nil {
			log.Fatal(err)
		}
		defer ds.Close()
		servers = append(servers, ds)
		dataAddrs = append(dataAddrs, ds.Addr())
		fmt.Printf("data server %d on %s\n", i, ds.Addr())
	}
	ms, err := pfsnet.NewMetaServer("127.0.0.1:0", stripeUnit, dataAddrs)
	if err != nil {
		log.Fatal(err)
	}
	defer ms.Close()

	// Seed through an unplanned client: setup writes skip the latency.
	seeder := pfsnet.NewClient(ms.Addr())
	f, err := seeder.Create("hedge", int64(ops)*blockLen+stripeUnit)
	if err != nil {
		log.Fatal(err)
	}
	block := func(i int) []byte {
		b := make([]byte, blockLen)
		x := faults.Mix64(plan.Seed() ^ uint64(i))
		for j := range b {
			b[j] = byte(faults.Mix64(x+uint64(j>>3)) >> uint(8*(j&7)))
		}
		return b
	}
	for i := 0; i < ops; i++ {
		if err := seeder.WriteAt(f, int64(i)*blockLen, block(i)); err != nil {
			log.Fatalf("hedge: seed write %d: %v", i, err)
		}
	}
	seeder.Close()
	fmt.Printf("seeded %d blocks (%d MB)\n", ops, int64(ops)*blockLen>>20)

	reg := obs.NewRegistry()
	plan.SetObs(reg)
	client := pfsnet.NewClient(ms.Addr())
	client.Obs = reg
	client.FaultPlan = plan
	client.FaultScope = "client"
	client.Hedge = true
	client.HedgeDelay = delay
	client.HedgeQuantile = quantile
	client.HedgeBudget = budget
	defer client.Close()
	f, err = client.Open("hedge")
	if err != nil {
		log.Fatal(err)
	}
	got := make([]byte, blockLen)
	for i := 0; i < ops; i++ {
		if err := client.ReadAt(f, int64(i)*blockLen, got); err != nil {
			log.Fatalf("hedge: read %d: %v", i, err)
		}
		if !bytes.Equal(got, block(i)) {
			log.Fatalf("hedge: block %d corrupted", i)
		}
	}
	fmt.Printf("read back %d blocks hedged, verified byte-for-byte\n", ops)

	// Timing-dependent numbers print above the summary marker: injected
	// latency counts depend on how many primary conn ops ran before their
	// cancels landed, and per-server cancels-honored depends on whether a
	// cancel beat its request out of the worker queue.
	var honored, direct int64
	for _, ds := range servers {
		st := ds.Stats()
		honored += st.CancelsHonored
		direct += st.DirectReads
	}
	fmt.Printf("server totals (timing-dependent): direct reads %d, cancels honored %d\n", direct, honored)
	fmt.Printf("faults injected (timing-dependent): %s\n", plan.CountsString())

	// The summary below is the reproducibility contract: a second run of
	// the same plan and flags must print identical lines.
	st := client.HedgeStats()
	fmt.Println("\nHEDGE SUMMARY")
	fmt.Printf("plan: %s\n", plan.String())
	fmt.Printf("hedges_armed: %d\n", st.Armed)
	fmt.Printf("hedges_fired: %d\n", st.Fired)
	fmt.Printf("hedges_won: %d\n", st.Won)
	fmt.Printf("hedges_wasted: %d\n", st.Wasted)
	fmt.Printf("hedges_suppressed: %d\n", st.Suppressed)
	fmt.Printf("cancels_sent: %d\n", st.CancelsSent)
	fmt.Println("hedge: completed, data verified")
}

// chaosServer is one data server slot the crash schedule can stop and
// restart on a stable address with a persistent store.
type chaosServer struct {
	scope string
	addr  string
	dir   string
	store string // "file" or "log"
	// tracer outlives crashes: a restarted server keeps appending spans
	// to its slot's buffer, so the span file covers the whole run.
	tracer *obs.XTracer
	ds     *pfsnet.DataServer // nil while crashed
	// Cumulative recovery counters across this slot's restarts (log
	// store only): every restart replays the journal, and with the
	// op-indexed crash schedule both totals are deterministic — they
	// belong in the CHAOS SUMMARY.
	replays, tornTails int64
}

func (s *chaosServer) start(plan *faults.Plan) error {
	var store pfsnet.ObjectStore
	if s.store == "log" {
		ls, err := logstore.Open(s.dir, logstore.Config{Scope: s.scope})
		if err != nil {
			return err
		}
		st := ls.Stats()
		s.replays += st.Replays
		s.tornTails += st.TruncatedTails
		store = ls
	} else {
		fs, err := pfsnet.NewFileStore(s.dir)
		if err != nil {
			return err
		}
		store = fs
	}
	ds, err := pfsnet.NewDataServerConfig(s.addr, pfsnet.ServerConfig{
		Bridge:     true,
		Store:      store,
		Tracer:     s.tracer,
		FaultPlan:  plan,
		FaultScope: s.scope,
	})
	if err != nil {
		return err
	}
	s.addr = ds.Addr()
	s.ds = ds
	return nil
}

// chaos runs the deterministic fault walkthrough: ops sequential
// unaligned block writes while the plan injects faults, then full byte
// verification and a reproducible summary.
func chaos(plan *faults.Plan, ops int, spansDir, storeKind string) {
	fmt.Printf("chaos plan: %s (seed %d)\n", plan.String(), plan.Seed())
	root, err := os.MkdirTemp("", "livecluster-chaos-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	// Data servers get stable scopes srv0..srvN-1 and file stores so a
	// crashed server restarts on the same address with its data intact.
	servers := make([]*chaosServer, nServers)
	var dataAddrs []string
	for i := range servers {
		servers[i] = &chaosServer{
			scope: fmt.Sprintf("srv%d", i),
			addr:  "127.0.0.1:0",
			dir:   filepath.Join(root, fmt.Sprintf("srv%d", i)),
			store: storeKind,
		}
		if spansDir != "" {
			servers[i].tracer = obs.NewXTracer(servers[i].scope, 0)
		}
		if err := os.MkdirAll(servers[i].dir, 0o755); err != nil {
			log.Fatal(err)
		}
		if err := servers[i].start(plan); err != nil {
			log.Fatal(err)
		}
		dataAddrs = append(dataAddrs, servers[i].addr)
		fmt.Printf("data server %s on %s\n", servers[i].scope, servers[i].addr)
	}
	defer func() {
		for _, s := range servers {
			if s.ds != nil {
				s.ds.Close()
			}
		}
	}()
	ms, err := pfsnet.NewMetaServer("127.0.0.1:0", stripeUnit, dataAddrs)
	if err != nil {
		log.Fatal(err)
	}
	defer ms.Close()

	// The resilient client: plan-injected conn faults, deterministic
	// retry jitter from the plan seed, deadlines, breaker on.
	reg := obs.NewRegistry()
	plan.SetObs(reg)
	var clientTracer *obs.XTracer
	if spansDir != "" {
		// The client tracer also receives the plan's fault instants, so
		// injected resets/crashes show up on the merged timeline next to
		// the requests they disturbed.
		clientTracer = obs.NewXTracer("client", 0)
		clientTracer.SetDropCounter(reg.Counter("obs.trace.dropped_events"))
		plan.SetTracer(clientTracer)
	}
	client := pfsnet.NewIBridgeClient(ms.Addr(), 20*1024, 20*1024)
	client.Obs = reg
	client.Tracer = clientTracer
	client.TrackLatency = true
	client.FaultPlan = plan
	client.FaultScope = "client"
	client.Seed = plan.Seed()
	client.IOTimeout = 5 * time.Second
	client.RetryBackoff = time.Millisecond
	defer client.Close()

	f, err := client.Create("chaos", int64(ops)*blockLen+stripeUnit)
	if err != nil {
		log.Fatal(err)
	}

	// The crash schedule is op-indexed: before issuing op i the driver
	// applies every event scheduled at i, so two runs of the same plan
	// crash and restart at exactly the same points in the request
	// sequence.
	events := plan.Events()
	next := 0
	applyEvents := func(op int) {
		for ; next < len(events) && events[next].Op <= op; next++ {
			ev := events[next]
			var target *chaosServer
			for _, s := range servers {
				if s.scope == ev.Scope {
					target = s
					break
				}
			}
			if target == nil {
				log.Fatalf("chaos: crash event names unknown scope %q", ev.Scope)
			}
			switch ev.Kind {
			case faults.ServerDown:
				if target.ds != nil {
					target.ds.Close()
					target.ds = nil
					plan.NoteCrash()
					fmt.Printf("op %4d: crashed %s\n", op, target.scope)
				}
			case faults.ServerUp:
				if target.ds == nil {
					if err := target.start(plan); err != nil {
						log.Fatalf("chaos: restart %s: %v", target.scope, err)
					}
					fmt.Printf("op %4d: restarted %s on %s\n", op, target.scope, target.addr)
				}
			}
		}
	}

	block := func(i int) []byte {
		b := make([]byte, blockLen)
		x := faults.Mix64(plan.Seed() ^ uint64(i))
		for j := range b {
			b[j] = byte(faults.Mix64(x+uint64(j>>3)) >> uint(8*(j&7)))
		}
		return b
	}

	var failedOps []int
	for i := 0; i < ops; i++ {
		applyEvents(i)
		if err := client.WriteAt(f, int64(i)*blockLen, block(i)); err != nil {
			// Expected while a server is down: the breaker fails fast
			// and the driver re-issues after the restart.
			failedOps = append(failedOps, i)
		}
	}
	applyEvents(int(^uint(0) >> 1)) // flush any events scheduled past the last op
	fmt.Printf("first pass: %d/%d writes landed, %d deferred during downtime\n",
		ops-len(failedOps), ops, len(failedOps))

	// Re-issue the writes that failed while a server was down. All
	// servers are up now, so every one must land.
	for _, i := range failedOps {
		if err := client.WriteAt(f, int64(i)*blockLen, block(i)); err != nil {
			log.Fatalf("chaos: re-issued write %d failed with all servers up: %v", i, err)
		}
	}

	// Full verification: every block must read back byte-for-byte.
	got := make([]byte, blockLen)
	for i := 0; i < ops; i++ {
		if err := client.ReadAt(f, int64(i)*blockLen, got); err != nil {
			log.Fatalf("chaos: verify read %d: %v", i, err)
		}
		if !bytes.Equal(got, block(i)) {
			log.Fatalf("chaos: block %d corrupted", i)
		}
	}
	fmt.Printf("verified %d blocks (%d MB) byte-for-byte\n", ops, int64(ops)*blockLen>>20)

	// Span files are written (and reported) before the summary: span
	// counts depend on retry timing, so they must stay out of the
	// reproducible CHAOS SUMMARY section.
	if spansDir != "" {
		if err := os.MkdirAll(spansDir, 0o755); err != nil {
			log.Fatal(err)
		}
		writeSpans := func(name string, tr *obs.XTracer) {
			path := filepath.Join(spansDir, name+".spans")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := tr.WriteSpans(f); err != nil {
				log.Fatalf("chaos: span file %s: %v", path, err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("chaos: span file %s: %v", path, err)
			}
			fmt.Printf("spans: %d events to %s\n", tr.Len(), path)
		}
		writeSpans("client", clientTracer)
		for _, s := range servers {
			writeSpans(s.scope, s.tracer)
		}
	}

	// The summary below is the reproducibility contract: a second run of
	// the same plan must print identical lines (ephemeral ports and
	// timings deliberately excluded).
	fmt.Println("\nCHAOS SUMMARY")
	fmt.Printf("plan: %s\n", plan.String())
	fmt.Printf("store: %s\n", storeKind)
	fmt.Printf("faults injected: %s\n", plan.CountsString())
	fmt.Printf("deferred-during-downtime: %d\n", len(failedOps))
	if storeKind == "log" {
		// Every restart replays the journal; with the op-indexed crash
		// schedule the totals are deterministic. Torn tails stay 0 here
		// because livecluster "crashes" close the process cleanly — the
		// mid-write kill loop lives in cmd/logstore-chaos.
		var replays, torn int64
		for _, s := range servers {
			replays += s.replays
			torn += s.tornTails
		}
		fmt.Printf("logstore.replays: %d\n", replays)
		fmt.Printf("logstore.truncated_tails: %d\n", torn)
	}
	vals := reg.CounterValues()
	keys := make([]string, 0, len(vals))
	for k := range vals {
		if k == "pfsnet.client.retries" || k == "pfsnet.client.breaker_opens" ||
			k == "pfsnet.client.breaker_fastfails" ||
			strings.HasPrefix(k, "faults.injected.") {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s: %d\n", k, vals[k])
	}
	fmt.Println("chaos: completed, data verified")
}
