// Live cluster: start a real pfsnet metadata server and four data servers
// over TCP in-process, then do striped file I/O through the network
// client — including an unaligned write whose fragment takes the iBridge
// log path at its data server.
//
// Run with: go run ./examples/livecluster
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/obs"
	"repro/internal/pfsnet"
)

func main() {
	// Start four iBridge-enabled data servers on ephemeral ports.
	var dataAddrs []string
	var servers []*pfsnet.DataServer
	for i := 0; i < 4; i++ {
		ds, err := pfsnet.NewDataServer("127.0.0.1:0", true)
		if err != nil {
			log.Fatal(err)
		}
		defer ds.Close()
		servers = append(servers, ds)
		dataAddrs = append(dataAddrs, ds.Addr())
		fmt.Printf("data server %d on %s\n", i, ds.Addr())
	}

	// Metadata server with a 64 KB striping unit.
	ms, err := pfsnet.NewMetaServer("127.0.0.1:0", 64*1024, dataAddrs)
	if err != nil {
		log.Fatal(err)
	}
	defer ms.Close()
	fmt.Printf("metadata server on %s\n\n", ms.Addr())

	// An iBridge client: sub-requests below 20 KB that belong to larger
	// striped parents are flagged as fragments on the wire. All
	// connections negotiate wire protocol v2, so sub-requests multiplex
	// over pipelined connections; the obs registry collects the
	// client-side wire metrics (frames, bytes, in-flight depth).
	reg := obs.NewRegistry()
	client := pfsnet.NewIBridgeClient(ms.Addr(), 20*1024, 20*1024)
	client.Obs = reg
	defer client.Close()

	f, err := client.Create("demo", 10<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created %q: %d bytes striped over %d servers (unit %d)\n",
		f.Name, f.Size, f.Layout().Servers, f.Layout().Unit)

	// A 65 KB write: 64 KB to server 0 plus a 1 KB fragment to server 1.
	payload := bytes.Repeat([]byte("iBridge!"), 65*1024/8)
	if err := client.WriteAt(f, 0, payload); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d bytes at offset 0 (unaligned: generates a 1KB fragment)\n", len(payload))

	// Read it back across the servers and verify.
	got := make([]byte, len(payload))
	if err := client.ReadAt(f, 0, got); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		log.Fatal("data mismatch")
	}
	fmt.Println("read back and verified byte-for-byte")

	fmt.Println("\nper-server statistics:")
	for i, ds := range servers {
		st := ds.Stats()
		fmt.Printf("  server %d: %d writes (%d via fragment log, %d log bytes), %d reads\n",
			i, st.Writes, st.FragmentWrites, st.LogBytes, st.Reads)
	}

	fmt.Println("\nclient wire metrics:")
	fmt.Print(reg.Render())
}
