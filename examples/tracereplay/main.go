// Trace replay: generate a synthetic CTH-like I/O trace (calibrated to
// the paper's Table I statistics for the Sandia CTH shock-physics code,
// the workload with the most random requests), classify it, and replay it
// against the simulated cluster with and without iBridge — the paper's
// Section III-E experiment.
//
// Run with: go run ./examples/tracereplay
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	const fileBytes = 1 << 30

	// Generate and classify the trace (Table I).
	cfg := trace.Workloads(5000, fileBytes, 42)[2] // CTH
	tr := trace.Generate(cfg)
	b := trace.DefaultClassifier().Analyze(tr)
	fmt.Printf("trace %s: %d requests, %.1f%% unaligned, %.1f%% random, mean size %.0f KB\n\n",
		tr.Name, b.Requests, b.UnalignedPct, b.RandomPct, b.MeanSize/1024)

	// Replay with a single process, as the paper does.
	replay := func(mode cluster.Mode) cluster.Result {
		ccfg := cluster.DefaultConfig()
		ccfg.Mode = mode
		ccfg.IBridge.SSDCapacity = 1 << 30
		c, err := cluster.New(ccfg)
		if err != nil {
			log.Fatal(err)
		}
		// Each replay needs its own copy: Replay clamps in place.
		trc := trace.Generate(cfg)
		res, err := c.Run(workload.Replay(trc, fileBytes))
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	stock := replay(cluster.Stock)
	ib := replay(cluster.IBridge)
	fmt.Printf("average request service time (stock):   %v\n", stock.AvgServiceTime)
	fmt.Printf("average request service time (iBridge): %v\n", ib.AvgServiceTime)
	fmt.Printf("reduction: %.1f%% (SSD served %.1f%% of bytes)\n",
		100*(1-float64(ib.AvgServiceTime)/float64(stock.AvgServiceTime)),
		ib.SSDFraction*100)
}
