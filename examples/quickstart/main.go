// Quickstart: build an 8-server simulated cluster, run the mpi-io-test
// benchmark with an unaligned 65 KB request size on the stock system and
// with iBridge, and compare throughput.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/workload"
)

func main() {
	run := func(mode cluster.Mode) cluster.Result {
		cfg := cluster.DefaultConfig() // 8 servers, 64 KB unit, Table II devices
		cfg.Mode = mode
		cfg.IBridge.SSDCapacity = 1 << 30

		c, err := cluster.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := c.Run(workload.MPIIOTest(workload.MPIIOTestConfig{
			Procs:       64,
			RequestSize: 65 * workload.KB, // 1 KB past the striping unit
			FileBytes:   128 * workload.MB,
			Write:       true,
			Jitter:      workload.DefaultJitter,
		}))
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	stock := run(cluster.Stock)
	ib := run(cluster.IBridge)

	fmt.Println("mpi-io-test, 64 processes, 65KB writes (unaligned with the 64KB striping unit):")
	fmt.Printf("  stock system: %6.1f MB/s (avg request service time %v)\n",
		stock.ThroughputMBps(), stock.AvgServiceTime)
	fmt.Printf("  iBridge:      %6.1f MB/s (avg request service time %v)\n",
		ib.ThroughputMBps(), ib.AvgServiceTime)
	fmt.Printf("  improvement:  %+.0f%%\n", 100*(ib.ThroughputMBps()/stock.ThroughputMBps()-1))
	fmt.Printf("  SSD served %.1f%% of all bytes; %d fragments admitted, %d MB written back to disk\n",
		ib.SSDFraction*100, ib.Bridge.Admissions[1], ib.Bridge.WritebackBytes>>20)
}
