// Unaligned-access study: sweep the three alignment patterns of the
// paper's Figure 1 on the stock system and show how misalignment destroys
// throughput, then show the block-level request-size distributions that
// explain it (Figures 2(c)–(e)).
//
// Run with: go run ./examples/unaligned
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/workload"
)

func run(size, shift int64, trace bool) cluster.Result {
	cfg := cluster.DefaultConfig()
	cfg.Trace = trace
	c, err := cluster.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.Run(workload.MPIIOTest(workload.MPIIOTestConfig{
		Procs:       16,
		RequestSize: size,
		Shift:       shift,
		FileBytes:   96 * workload.MB,
		Jitter:      workload.DefaultJitter,
	}))
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("Pattern I — requests aligned with the 64KB striping unit:")
	p1 := run(64*workload.KB, 0, true)
	fmt.Printf("  throughput: %.1f MB/s\n", p1.ThroughputMBps())

	fmt.Println("\nPattern II — 65KB requests (sequential in file space, fragments at servers):")
	p2 := run(65*workload.KB, 0, true)
	fmt.Printf("  throughput: %.1f MB/s (%.0f%% of aligned)\n",
		p2.ThroughputMBps(), 100*p2.ThroughputMBps()/p1.ThroughputMBps())

	fmt.Println("\nPattern III — 64KB requests shifted by 10KB (every request spans two servers):")
	p3 := run(64*workload.KB, 10*workload.KB, true)
	fmt.Printf("  throughput: %.1f MB/s (%.0f%% of aligned)\n",
		p3.ThroughputMBps(), 100*p3.ThroughputMBps()/p1.ThroughputMBps())

	fmt.Println("\nBlock-level request-size distributions (the paper's Figures 2(c)-(e)):")
	fmt.Println(p1.Blocks.Render())
	fmt.Println(p2.Blocks.Render())
	fmt.Println(p3.Blocks.Render())
}
