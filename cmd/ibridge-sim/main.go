// Command ibridge-sim runs a single what-if mpi-io-test experiment on the
// simulated cluster with every knob exposed, for exploring configurations
// beyond the paper's tables.
//
// Examples:
//
//	ibridge-sim -mode ibridge -size 65536 -procs 64 -write
//	ibridge-sim -mode stock -size 65536 -shift 10240 -servers 4
//	ibridge-sim -mode ibridge -threshold 40960 -ssd 2147483648 -blktrace
//	ibridge-sim -mode ibridge -metrics -trace trace.json -obs-sample-ms 500
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		mode      = flag.String("mode", "ibridge", "storage mode: stock, ibridge, ssdonly")
		servers   = flag.Int("servers", 8, "data servers")
		unit      = flag.Int64("unit", 64*1024, "striping unit bytes")
		procs     = flag.Int("procs", 64, "MPI processes")
		size      = flag.Int64("size", 65*1024, "request size bytes")
		shift     = flag.Int64("shift", 0, "request offset shift bytes (Pattern III)")
		fileMB    = flag.Int64("file", 128, "data volume in MiB")
		write     = flag.Bool("write", false, "write instead of read")
		warm      = flag.Bool("warm", false, "run an unmeasured warm pass first (read caching)")
		barrier   = flag.Bool("barrier", false, "barrier between iterations")
		threshold = flag.Int64("threshold", 20*1024, "fragment/random threshold bytes")
		ssdBytes  = flag.Int64("ssd", 1<<30, "per-server SSD cache bytes")
		readahead = flag.Bool("readahead", false, "enable server-side readahead")
		blktrace  = flag.Bool("blktrace", false, "print the block-level request size distribution")
		metrics   = flag.Bool("metrics", false, "print the metrics registry and T_i time series after the run")
		traceTo   = flag.String("trace", "", "write a Chrome trace_event JSON request-flow trace to this file")
		obsMS     = flag.Int("obs-sample-ms", 0, "minimum virtual ms between T_i samples (0: every broadcast tick)")
		jitterUS  = flag.Int64("jitter", 2000, "per-rank think time bound in microseconds")
		seed      = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	cfg := cluster.DefaultConfig()
	switch *mode {
	case "stock":
		cfg.Mode = cluster.Stock
	case "ibridge":
		cfg.Mode = cluster.IBridge
	case "ssdonly":
		cfg.Mode = cluster.SSDOnly
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	cfg.Servers = *servers
	cfg.StripeUnit = *unit
	cfg.FragmentThreshold = *threshold
	cfg.RandomThreshold = *threshold
	cfg.IBridge.SSDCapacity = *ssdBytes
	cfg.Readahead = *readahead
	cfg.Trace = *blktrace
	cfg.Seed = *seed
	set := obs.New(obs.Config{
		Metrics:     *metrics,
		Trace:       *traceTo != "",
		SampleEvery: sim.Duration(*obsMS) * sim.Millisecond,
	})
	cfg.Obs = set

	c, err := cluster.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep := &workload.Report{}
	res, err := c.Run(workload.MPIIOTest(workload.MPIIOTestConfig{
		Procs:       *procs,
		RequestSize: *size,
		Shift:       *shift,
		FileBytes:   *fileMB << 20,
		Write:       *write,
		Barrier:     *barrier,
		Warm:        *warm,
		Jitter:      sim.Duration(*jitterUS) * sim.Microsecond,
		Seed:        *seed,
		Report:      rep,
	}))
	if err != nil {
		log.Fatal(err)
	}

	op := "read"
	if *write {
		op = "write"
	}
	fmt.Printf("mode=%s servers=%d unit=%d procs=%d %s size=%d shift=%d volume=%dMiB\n",
		*mode, *servers, *unit, *procs, op, *size, *shift, *fileMB)
	if *warm {
		fmt.Printf("measured pass:  %8.1f MB/s over %v\n", rep.ThroughputMBps(), rep.Elapsed())
	}
	fmt.Printf("whole run:      %8.1f MB/s (elapsed %v + flush %v)\n",
		res.ThroughputMBps(), res.Elapsed, res.FlushTime)
	fmt.Printf("requests:       %d, avg service time %v\n", res.Requests, res.AvgServiceTime)
	if cfg.Mode == cluster.IBridge {
		fmt.Printf("iBridge:        %.1f%% of bytes served at SSD; admissions %v; hits %d; writeback %d MB; peak usage %d MB\n",
			res.SSDFraction*100, res.Bridge.Admissions, res.Bridge.Hits,
			res.Bridge.WritebackBytes>>20, res.PeakSSDUsage>>20)
	}
	ds := c.DiskStats()
	fmt.Printf("disks:          %d ops, %d repositionings, busy %.0f%%\n",
		ds.TotalOps(), ds.Seeks, 100*ds.BusyTime.Seconds()/float64(cfg.Servers)/(res.Elapsed+res.FlushTime).Seconds())
	if *blktrace && res.Blocks != nil {
		fmt.Println()
		fmt.Print(res.Blocks.Render())
	}
	if *metrics {
		fmt.Println()
		set.WriteMetrics(os.Stdout)
		set.WriteTiSeries(os.Stdout)
	}
	// Tracer() is non-nil exactly when -trace enabled it above; binding
	// it keeps the nil-sink contract checkable (obsnil analyzer).
	if tr := set.Tracer(); tr != nil && *traceTo != "" {
		f, err := os.Create(*traceTo)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteChrome(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace: %d events written to %s (load in chrome://tracing)\n",
			tr.Len(), *traceTo)
	}
}
