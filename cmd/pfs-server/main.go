// Command pfs-server runs one pfsnet data server.
//
// Usage:
//
//	pfs-server -listen 127.0.0.1:7001 -ibridge
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/pfsnet"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:7001", "address to listen on")
		ibridge = flag.Bool("ibridge", false, "enable the iBridge fragment log")
		dir     = flag.String("dir", "", "store objects in files under this directory (default: in memory)")
		stats   = flag.Duration("stats", 0, "print server statistics at this interval (0 = never)")
	)
	flag.Parse()
	var store pfsnet.ObjectStore = pfsnet.NewMemStore()
	if *dir != "" {
		var err error
		store, err = pfsnet.NewFileStore(*dir)
		if err != nil {
			log.Fatalf("pfs-server: %v", err)
		}
	}
	ds, err := pfsnet.NewDataServerWithStore(*listen, *ibridge, store)
	if err != nil {
		log.Fatalf("pfs-server: %v", err)
	}
	log.Printf("pfs-server: serving on %s (iBridge log: %v)", ds.Addr(), *ibridge)
	if *stats > 0 {
		go func() {
			for range time.Tick(*stats) {
				s := ds.Stats()
				log.Printf("pfs-server: reads=%d writes=%d fragWrites=%d fragReads=%d logBytes=%d",
					s.Reads, s.Writes, s.FragmentWrites, s.FragmentReads, s.LogBytes)
			}
		}()
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Print("pfs-server: shutting down")
	ds.Close()
}
