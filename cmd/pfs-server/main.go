// Command pfs-server runs one pfsnet data server.
//
// Usage:
//
//	pfs-server -listen 127.0.0.1:7001 -ibridge
//	pfs-server -listen 127.0.0.1:7001 -workers 16
//	pfs-server -listen 127.0.0.1:7001 -store log -store-dir /data/srv0
//	pfs-server -listen 127.0.0.1:7001 -debug-addr 127.0.0.1:7071
//	pfs-server -listen 127.0.0.1:7001 -span-file srv0.spans
//	pfs-server -listen 127.0.0.1:7001 -io-timeout 10s \
//	    -faults 'seed=1; reset=1%; ssdfail=srv0@100' -fault-scope srv0
//
// -store selects the backing object store: "mem" (default, volatile),
// "file" (one sparse file per object under -store-dir; durable only
// after a clean shutdown), or "log" (internal/logstore: append-only
// checksummed log under -store-dir with checkpointed journal replay —
// survives kill -9 mid-write; see DESIGN §14). -checkpoint-bytes tunes
// how much appended log triggers a mapping-table checkpoint for the
// log store.
//
// The server speaks wire protocol v2 (pipelined, multiplexed tagged
// frames) with v2 clients and falls back to v1 per connection; -workers
// bounds the per-connection handler pool for pipelined connections, and
// -max-proto 1 forces legacy single-round-trip behaviour.
//
// With -debug-addr the server exposes its metrics registry over expvar:
// GET http://<debug-addr>/debug/vars returns a JSON map holding the
// standard expvar keys plus "pfs" (the live server counters and the
// "pfsnet.server.*" wire metrics: frames, bytes, in-flight depth,
// queue wait).
//
// With -span-file the server arms an obs.XTracer named after its fault
// scope: traced v2 clients propagate {traceID, parentSpanID} on the
// wire, and the per-request queue-wait/store/respond spans land in the
// span file at shutdown. Merge the per-process files with
// `ibridge-trace -merge`.
package main

import (
	"expvar"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/faults"
	"repro/internal/logstore"
	"repro/internal/obs"
	"repro/internal/pfsnet"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:7001", "address to listen on")
		ibridge    = flag.Bool("ibridge", false, "enable the iBridge fragment log")
		dir        = flag.String("dir", "", "store objects in files under this directory (deprecated alias for -store file -store-dir DIR)")
		storeKind  = flag.String("store", "", "backing store: mem (default), file, or log (crash-consistent; see DESIGN §14)")
		storeDir   = flag.String("store-dir", "", "directory for the file or log store")
		ckptBytes  = flag.Int64("checkpoint-bytes", 0, "log store: install a mapping-table checkpoint after this many appended log bytes (0 = default 4MiB, <0 = only on open/close)")
		workers    = flag.Int("workers", 0, "per-connection handler pool size for pipelined (v2) connections (0 = default)")
		maxProto   = flag.Int("max-proto", 0, "highest wire protocol version to negotiate (0 = latest, 1 = legacy)")
		noVec      = flag.Bool("no-vectored", false, "respond through the corked bufio path instead of vectored (writev) submission")
		noCancel   = flag.Bool("no-cancel", false, "do not advertise featCancel: hedging clients fall back to plain re-issue without loser cancellation")
		stats      = flag.Duration("stats", 0, "print server statistics at this interval (0 = never)")
		debugAddr  = flag.String("debug-addr", "", "serve expvar metrics over HTTP at this address (/debug/vars)")
		spanFile   = flag.String("span-file", "", "write this server's trace spans (JSON lines) to this file at shutdown; merge with 'ibridge-trace -merge'")
		ioTimeout  = flag.Duration("io-timeout", 30*time.Second, "per-frame read/write deadline on each connection (0 = off)")
		faultSpec  = flag.String("faults", "", "deterministic fault-injection plan, e.g. 'seed=1; reset=1%; ssdfail=srv0@100' (see internal/faults)")
		faultScope = flag.String("fault-scope", "srv0", "this server's scope label in the fault plan")
	)
	flag.Parse()
	var plan *faults.Plan
	if *faultSpec != "" {
		var err error
		if plan, err = faults.Parse(*faultSpec); err != nil {
			log.Fatalf("pfs-server: %v", err)
		}
	}
	// The registry is shared: the wire layer updates its
	// "pfsnet.server.*" metrics inline, the log store (when selected)
	// adds "logstore.*", and the Stats counters are published as
	// functions read at scrape time.
	reg := obs.NewRegistry()
	// The tracer names this process by its fault scope ("srv0", ...),
	// which is what groups its spans into one pid lane after a merge.
	var tracer *obs.XTracer
	if *spanFile != "" {
		tracer = obs.NewXTracer(*faultScope, 0)
		tracer.SetDropCounter(reg.Counter("obs.trace.dropped_events"))
		plan.SetTracer(tracer)
	}
	// Store selection: -store {mem,file,log}; the older -dir flag is an
	// alias for the file store so existing invocations keep working.
	kind, sdir := *storeKind, *storeDir
	if sdir == "" {
		sdir = *dir
	}
	if kind == "" {
		if sdir != "" {
			kind = "file"
		} else {
			kind = "mem"
		}
	}
	var store pfsnet.ObjectStore
	var logStore *logstore.LogStore
	switch kind {
	case "mem":
		store = pfsnet.NewMemStore()
	case "file":
		if sdir == "" {
			log.Fatal("pfs-server: -store file requires -store-dir")
		}
		fs, err := pfsnet.NewFileStore(sdir)
		if err != nil {
			log.Fatalf("pfs-server: %v", err)
		}
		store = fs
	case "log":
		if sdir == "" {
			log.Fatal("pfs-server: -store log requires -store-dir")
		}
		ls, err := logstore.Open(sdir, logstore.Config{
			CheckpointBytes: *ckptBytes,
			Obs:             reg,
			Tracer:          tracer,
			Scope:           *faultScope,
		})
		if err != nil {
			log.Fatalf("pfs-server: %v", err)
		}
		st := ls.Stats()
		log.Printf("pfs-server: log store %s: generation %d, %d records replayed, %d torn tails truncated",
			sdir, st.Generation, st.ReplayedRecords, st.TruncatedTails)
		store, logStore = ls, ls
	default:
		log.Fatalf("pfs-server: unknown -store %q (want mem, file, or log)", kind)
	}
	ds, err := pfsnet.NewDataServerConfig(*listen, pfsnet.ServerConfig{
		Bridge:          *ibridge,
		Store:           store,
		Workers:         *workers,
		MaxProto:        *maxProto,
		DisableVectored: *noVec,
		DisableCancel:   *noCancel,
		Obs:             reg,
		Tracer:          tracer,
		IOTimeout:       *ioTimeout,
		FaultPlan:       plan,
		FaultScope:      *faultScope,
	})
	if err != nil {
		log.Fatalf("pfs-server: %v", err)
	}
	log.Printf("pfs-server: serving on %s (iBridge log: %v)", ds.Addr(), *ibridge)
	if *debugAddr != "" {
		reg.RegisterFunc("pfs.reads", func() float64 { return float64(ds.Stats().Reads) })
		reg.RegisterFunc("pfs.writes", func() float64 { return float64(ds.Stats().Writes) })
		reg.RegisterFunc("pfs.fragment_writes", func() float64 { return float64(ds.Stats().FragmentWrites) })
		reg.RegisterFunc("pfs.fragment_reads", func() float64 { return float64(ds.Stats().FragmentReads) })
		reg.RegisterFunc("pfs.log_bytes", func() float64 { return float64(ds.Stats().LogBytes) })
		if logStore != nil {
			// The logstore.* counters and gauges live in the shared
			// registry already; the generation is the one piece of state
			// only Stats exposes.
			reg.RegisterFunc("logstore.generation", func() float64 { return float64(logStore.Stats().Generation) })
		}
		reg.PublishExpvar("pfs")
		go func() {
			mux := http.NewServeMux()
			mux.Handle("/debug/vars", expvar.Handler())
			log.Printf("pfs-server: expvar metrics on http://%s/debug/vars", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				log.Printf("pfs-server: debug server: %v", err)
			}
		}()
	}
	if *stats > 0 {
		go func() {
			for range time.Tick(*stats) {
				s := ds.Stats()
				log.Printf("pfs-server: reads=%d writes=%d fragWrites=%d fragReads=%d logBytes=%d",
					s.Reads, s.Writes, s.FragmentWrites, s.FragmentReads, s.LogBytes)
			}
		}()
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Print("pfs-server: shutting down")
	ds.Close()
	if plan != nil {
		log.Printf("pfs-server: faults injected: %s", plan.CountsString())
	}
	if tracer != nil {
		f, err := os.Create(*spanFile)
		if err != nil {
			log.Fatalf("pfs-server: %v", err)
		}
		if err := tracer.WriteSpans(f); err != nil {
			log.Fatalf("pfs-server: span file %s: %v", *spanFile, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("pfs-server: span file %s: %v", *spanFile, err)
		}
		log.Printf("pfs-server: %d spans written to %s (dropped %d)", tracer.Len(), *spanFile, tracer.Dropped())
	}
}
