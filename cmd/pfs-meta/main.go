// Command pfs-meta runs the pfsnet metadata server.
//
// Usage:
//
//	pfs-meta -listen 127.0.0.1:7000 -unit 65536 \
//	    -servers 127.0.0.1:7001,127.0.0.1:7002
//
// The server negotiates wire protocol v2 (tagged frames) with v2
// clients automatically and keeps speaking v1 with legacy clients; no
// flag is needed — metadata traffic is a handful of round trips per
// file, so both versions are served by the same sequential loop.
//
// With -debug-addr the server exposes its metrics registry over expvar:
// GET http://<debug-addr>/debug/vars returns a JSON map holding the
// standard expvar keys plus "pfs" (the "pfsnet.meta.*" wire metrics:
// frames, bytes, in-flight depth, queue wait).
package main

import (
	"expvar"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/pfsnet"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:7000", "address to listen on")
		unit       = flag.Int64("unit", 64*1024, "striping unit in bytes")
		servers    = flag.String("servers", "", "comma-separated data server addresses, in stripe order")
		ioTimeout  = flag.Duration("io-timeout", 30*time.Second, "per-frame read/write deadline on each connection (0 = off)")
		debugAddr  = flag.String("debug-addr", "", "serve expvar metrics over HTTP at this address (/debug/vars)")
		faultSpec  = flag.String("faults", "", "deterministic fault-injection plan (see internal/faults)")
		faultScope = flag.String("fault-scope", "meta", "this server's scope label in the fault plan")
		loadHints  = flag.String("load-hints", "", "comma-separated expected service times (ms), one per data server in stripe order; broadcast to clients on Create/Open for cold-start issue ordering")
	)
	flag.Parse()
	addrs := strings.Split(*servers, ",")
	if *servers == "" || len(addrs) == 0 {
		log.Fatal("pfs-meta: -servers is required")
	}
	var plan *faults.Plan
	if *faultSpec != "" {
		var err error
		if plan, err = faults.Parse(*faultSpec); err != nil {
			log.Fatalf("pfs-meta: %v", err)
		}
	}
	reg := obs.NewRegistry()
	ms, err := pfsnet.NewMetaServerConfig(*listen, *unit, addrs, pfsnet.MetaConfig{
		IOTimeout:  *ioTimeout,
		Obs:        reg,
		FaultPlan:  plan,
		FaultScope: *faultScope,
	})
	if err != nil {
		log.Fatalf("pfs-meta: %v", err)
	}
	if *loadHints != "" {
		parts := strings.Split(*loadHints, ",")
		hints := make([]float64, len(parts))
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				log.Fatalf("pfs-meta: -load-hints[%d]: %v", i, err)
			}
			hints[i] = v
		}
		if err := ms.SetLoadHints(hints); err != nil {
			log.Fatalf("pfs-meta: %v", err)
		}
		log.Printf("pfs-meta: broadcasting load hints %v", hints)
	}
	log.Printf("pfs-meta: serving on %s (unit %d, %d data servers)", ms.Addr(), *unit, len(addrs))
	if *debugAddr != "" {
		reg.PublishExpvar("pfs")
		go func() {
			mux := http.NewServeMux()
			mux.Handle("/debug/vars", expvar.Handler())
			log.Printf("pfs-meta: expvar metrics on http://%s/debug/vars", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				log.Printf("pfs-meta: debug server: %v", err)
			}
		}()
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Print("pfs-meta: shutting down")
	ms.Close()
}
