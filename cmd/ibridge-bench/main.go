// Command ibridge-bench regenerates the paper's tables and figures from
// the simulated cluster.
//
// Usage:
//
//	ibridge-bench -list
//	ibridge-bench -exp fig4 -scale medium
//	ibridge-bench -exp fig4,fig5,table3 -scale medium
//	ibridge-bench -exp all -scale small -jobs 8
//	ibridge-bench -exp fig12 -metrics -trace trace.json -v
//
// Experiments run concurrently: every experiment fans its data-point grid
// (independent cluster simulations) out across -jobs host goroutines, and
// with multiple experiment ids the experiments themselves overlap too.
// Output order and bytes are independent of -jobs: tables are emitted to
// stdout (and -out) by a single writer in request order, and per-cluster
// RNGs are seed-derived, so a -jobs 8 run renders byte-identical tables
// to a -jobs 1 run. Diagnostics (timings, -metrics report) go to stderr
// and -trace to its own file, so the rendered results stay deterministic
// whether or not observability is enabled. -debug-addr serves the live
// metrics registry over expvar (/debug/vars) for scraping mid-run.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/sim"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "comma-separated experiment ids (see -list), or 'all'")
		scale     = flag.String("scale", "medium", "scale: smoke, small, medium, full")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		out       = flag.String("out", "", "also append rendered results to this file")
		jobs      = flag.Int("jobs", 0, "concurrent simulations (<=0: GOMAXPROCS)")
		metrics   = flag.Bool("metrics", false, "print the metrics registry and T_i telemetry to stderr")
		traceTo   = flag.String("trace", "", "write a Chrome trace_event JSON request-flow trace to this file")
		obsMS     = flag.Int("obs-sample-ms", 0, "minimum virtual ms between T_i samples (0: every broadcast tick)")
		debugAddr = flag.String("debug-addr", "", "serve the live metrics registry over HTTP at this address (/debug/vars); implies -metrics")
		faultArg  = flag.String("faults", "", "fault plan applied to every experiment cluster (see internal/faults; only ssdfail=srvN@DUR clauses act in simulation)")
		verbose   = flag.Bool("v", false, "verbose: per-experiment host timings on stderr")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.List() {
			fmt.Println(id)
		}
		return
	}
	logLevel := obs.LevelInfo
	if *verbose {
		logLevel = obs.LevelDebug
	}
	logger := obs.NewLogger(os.Stderr, logLevel)
	set := obs.New(obs.Config{
		Metrics:     *metrics || *debugAddr != "",
		Trace:       *traceTo != "",
		SampleEvery: sim.Duration(*obsMS) * sim.Millisecond,
	})
	experiments.SetObs(set)
	if *debugAddr != "" {
		// Scraping mid-run reads the live registry: simulation counters
		// and any registered gauges (e.g. pfsnet client latency-sketch
		// quantiles when a cluster experiment wires a registry through).
		set.Registry().PublishExpvar("bench")
		go func() {
			mux := http.NewServeMux()
			mux.Handle("/debug/vars", expvar.Handler())
			log.Printf("ibridge-bench: expvar metrics on http://%s/debug/vars", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				log.Printf("ibridge-bench: debug server: %v", err)
			}
		}()
	}
	var plan *faults.Plan
	if *faultArg != "" {
		var err error
		if plan, err = faults.Parse(*faultArg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		experiments.SetFaults(plan)
	}

	runner.SetJobs(*jobs)
	s, err := experiments.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ids, err := resolveIDs(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var sink io.Writer = os.Stdout
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		sink = io.MultiWriter(os.Stdout, f)
	}

	type result struct {
		rendered string
		elapsed  time.Duration
	}
	start := time.Now()
	// Experiments are coarse Stream units; each one's simulations are
	// throttled by the shared runner pool, and the emit callback is the
	// single ordered writer for stdout and the -out file.
	err = runner.Stream(len(ids),
		func(i int) (result, error) {
			t0 := time.Now()
			tbl, err := experiments.Run(ids[i], s)
			if err != nil {
				return result{}, fmt.Errorf("%s: %w", ids[i], err)
			}
			return result{rendered: tbl.Render(), elapsed: time.Since(t0)}, nil
		},
		func(i int, r result) error {
			if _, err := fmt.Fprintf(sink, "%s\n", r.rendered); err != nil {
				return err
			}
			logger.Debugf("%s completed in %.1fs host time at scale %s",
				ids[i], r.elapsed.Seconds(), s.Name)
			return nil
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	logger.Infof("%d experiments in %.1fs wall time, jobs=%d",
		len(ids), time.Since(start).Seconds(), runner.Jobs())

	if plan != nil {
		logger.Infof("faults injected: %s", plan.CountsString())
	}
	if *metrics {
		set.WriteMetrics(os.Stderr)
	}
	if tr := set.Tracer(); tr != nil && *traceTo != "" {
		if err := writeTrace(tr, *traceTo); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		logger.Infof("trace: %d events written to %s (load in chrome://tracing)",
			tr.Len(), *traceTo)
	}
}

// writeTrace dumps the buffered request-flow trace as Chrome trace_event
// JSON.
func writeTrace(tr *obs.Tracer, path string) error {
	if tr == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return fmt.Errorf("trace %s: %w", path, err)
	}
	return f.Close()
}

// resolveIDs expands the -exp flag: a comma-separated id list, where
// "all" (alone or among others) expands to every registered experiment.
// Unknown ids are rejected before any simulation starts.
func resolveIDs(exp string) ([]string, error) {
	known := map[string]bool{}
	for _, id := range experiments.List() {
		known[id] = true
	}
	var ids []string
	seen := map[string]bool{}
	for _, part := range strings.Split(exp, ",") {
		id := strings.TrimSpace(part)
		switch {
		case id == "":
			continue
		case id == "all":
			for _, a := range experiments.List() {
				if !seen[a] {
					seen[a] = true
					ids = append(ids, a)
				}
			}
		case !known[id]:
			return nil, fmt.Errorf("unknown experiment %q (try -list)", id)
		case !seen[id]:
			seen[id] = true
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("no experiments selected by -exp %q", exp)
	}
	return ids, nil
}
