// Command ibridge-bench regenerates the paper's tables and figures from
// the simulated cluster.
//
// Usage:
//
//	ibridge-bench -list
//	ibridge-bench -exp fig4 -scale medium
//	ibridge-bench -exp all -scale small
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		scale = flag.String("scale", "medium", "scale: smoke, small, medium, full")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		out   = flag.String("out", "", "also append rendered results to this file")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.List() {
			fmt.Println(id)
		}
		return
	}
	s, err := experiments.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var sink io.Writer = os.Stdout
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		sink = io.MultiWriter(os.Stdout, f)
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.List()
	}
	for _, id := range ids {
		start := time.Now()
		tbl, err := experiments.Run(id, s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Fprintln(sink, tbl.Render())
		fmt.Fprintf(sink, "(%s completed in %.1fs host time at scale %s)\n\n", id, time.Since(start).Seconds(), s.Name)
	}
}
