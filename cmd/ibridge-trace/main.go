// Command ibridge-trace analyzes and generates I/O traces in the format
// of internal/trace.
//
// Usage:
//
//	ibridge-trace -analyze trace.txt            # Table I classification
//	ibridge-trace -gen S3D -records 10000 -o s3d.txt
//	ibridge-trace -gen all -records 10000       # Table I over all four
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/trace"
)

func main() {
	var (
		analyze = flag.String("analyze", "", "trace file to classify (Table I rules)")
		gen     = flag.String("gen", "", "generate a synthetic trace: ALEGRA-2744, ALEGRA-5832, CTH, S3D, or 'all'")
		records = flag.Int("records", 10000, "records to generate")
		size    = flag.Int64("size", 10<<30, "file size bound for generated offsets")
		seed    = flag.Uint64("seed", 42, "generation seed")
		out     = flag.String("o", "", "output file for -gen (default stdout)")
		unit    = flag.Int64("unit", 64*1024, "striping unit for classification")
		random  = flag.Int64("random", 20*1024, "random-request threshold for classification")
	)
	flag.Parse()

	cls := trace.Classifier{Unit: *unit, RandomThreshold: *random}
	switch {
	case *analyze != "":
		f, err := os.Open(*analyze)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tr, err := trace.Parse(f)
		if err != nil {
			log.Fatal(err)
		}
		b := cls.Analyze(tr)
		fmt.Printf("trace:     %s\nrequests:  %d\nunaligned: %.1f%%\nrandom:    %.1f%%\ntotal:     %.1f%%\nmean size: %.1f KB\n",
			tr.Name, b.Requests, b.UnalignedPct, b.RandomPct, b.TotalPct, b.MeanSize/1024)
	case *gen == "all":
		var traces []*trace.Trace
		for _, cfg := range trace.Workloads(*records, *size, *seed) {
			traces = append(traces, trace.Generate(cfg))
		}
		fmt.Print(trace.TableI(traces))
	case *gen != "":
		var found bool
		for _, cfg := range trace.Workloads(*records, *size, *seed) {
			if cfg.Name == *gen {
				tr := trace.Generate(cfg)
				w := os.Stdout
				if *out != "" {
					f, err := os.Create(*out)
					if err != nil {
						log.Fatal(err)
					}
					defer f.Close()
					w = f
				}
				if err := tr.Write(w); err != nil {
					log.Fatal(err)
				}
				found = true
				break
			}
		}
		if !found {
			log.Fatalf("unknown workload %q", *gen)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
