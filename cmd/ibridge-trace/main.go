// Command ibridge-trace analyzes and generates I/O traces in the format
// of internal/trace, and merges cross-process span files into one
// Chrome trace.
//
// Usage:
//
//	ibridge-trace -analyze trace.txt            # Table I classification
//	ibridge-trace -gen S3D -records 10000 -o s3d.txt
//	ibridge-trace -gen all -records 10000       # Table I over all four
//	ibridge-trace -merge -o merged.json client.spans srv0.spans srv1.spans
//
// -merge reads the JSON-lines span files written by obs.XTracer
// (pfs-server -span-file, livecluster -spans-dir), aligns their
// wall-clock timestamps to a common origin, and writes one Chrome
// trace_event document (load in chrome://tracing or ui.perfetto.dev):
// each process becomes a pid, each scope within it a lane, and the
// client's per-request span lines up over the server-side
// queue-wait/store/respond child spans it caused.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/obs"
	"repro/internal/trace"
)

func main() {
	var (
		analyze = flag.String("analyze", "", "trace file to classify (Table I rules)")
		gen     = flag.String("gen", "", "generate a synthetic trace: ALEGRA-2744, ALEGRA-5832, CTH, S3D, or 'all'")
		merge   = flag.Bool("merge", false, "merge span files (args) into one Chrome trace at -o")
		records = flag.Int("records", 10000, "records to generate")
		size    = flag.Int64("size", 10<<30, "file size bound for generated offsets")
		seed    = flag.Uint64("seed", 42, "generation seed")
		out     = flag.String("o", "", "output file for -gen (default stdout)")
		unit    = flag.Int64("unit", 64*1024, "striping unit for classification")
		random  = flag.Int64("random", 20*1024, "random-request threshold for classification")
	)
	flag.Parse()

	cls := trace.Classifier{Unit: *unit, RandomThreshold: *random}
	switch {
	case *merge:
		if err := mergeSpans(flag.Args(), *out); err != nil {
			log.Fatal(err)
		}
	case *analyze != "":
		f, err := os.Open(*analyze)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tr, err := trace.Parse(f)
		if err != nil {
			log.Fatal(err)
		}
		b := cls.Analyze(tr)
		fmt.Printf("trace:     %s\nrequests:  %d\nunaligned: %.1f%%\nrandom:    %.1f%%\ntotal:     %.1f%%\nmean size: %.1f KB\n",
			tr.Name, b.Requests, b.UnalignedPct, b.RandomPct, b.TotalPct, b.MeanSize/1024)
	case *gen == "all":
		var traces []*trace.Trace
		for _, cfg := range trace.Workloads(*records, *size, *seed) {
			traces = append(traces, trace.Generate(cfg))
		}
		fmt.Print(trace.TableI(traces))
	case *gen != "":
		var found bool
		for _, cfg := range trace.Workloads(*records, *size, *seed) {
			if cfg.Name == *gen {
				tr := trace.Generate(cfg)
				w := os.Stdout
				if *out != "" {
					f, err := os.Create(*out)
					if err != nil {
						log.Fatal(err)
					}
					defer f.Close()
					w = f
				}
				if err := tr.Write(w); err != nil {
					log.Fatal(err)
				}
				found = true
				break
			}
		}
		if !found {
			log.Fatalf("unknown workload %q", *gen)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// mergeSpans concatenates per-process span files and renders them as a
// single Chrome trace. Events keep their wall-clock order; WriteChromeX
// normalizes all timestamps to the earliest event, so processes started
// at different times still line up on one timeline.
func mergeSpans(files []string, out string) error {
	if len(files) == 0 {
		return fmt.Errorf("ibridge-trace: -merge needs at least one span file argument")
	}
	var evs []obs.XEvent
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		got, err := obs.ReadSpans(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		evs = append(evs, got...)
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := obs.WriteChromeX(w, evs); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ibridge-trace: merged %d events from %d span files\n", len(evs), len(files))
	return nil
}
