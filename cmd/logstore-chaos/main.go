// Command logstore-chaos is the kill-at-every-Kth-op recovery loop
// gating the crash-consistency claims of internal/logstore (DESIGN
// §14). For each K in a sweep it runs a canned, seeded write workload
// against a store that simulates a process kill on every Kth record
// append — torn mid-frame, torn at zero bytes, or fully written but
// unacknowledged, rotating deterministically — then reopens the store,
// replays the journal, and byte-verifies every object against an
// in-memory shadow after every single crash:
//
//   - an acknowledged write must never lose a byte (zero data loss);
//   - a torn append must be truncated and invisible (record
//     atomicity);
//   - a fully-durable-but-unacknowledged append must read back as
//     exactly the write that was issued (idempotent re-issue).
//
// Nothing in the loop consults a clock or a random source, so two runs
// print byte-identical RECOVERY SUMMARY sections — `make chaos-smoke`
// runs it twice and diffs, and CI keeps the summary as an artifact.
// The sweep must also tear at least one tail (nonzero truncated_tails
// overall) or the run fails: a kill loop that never produces a torn
// frame isn't testing torn-frame recovery.
//
// Usage:
//
//	logstore-chaos [-ops 80] [-seed 42] [-ks 3,5,7,13] [-dir DIR]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/faults"
	"repro/internal/logstore"
)

const (
	objects     = 4
	maxWriteLen = 1024
	offsetSpan  = 8192 // small enough that writes overlap and create garbage
	compactEach = 25   // ops between forced compactions
)

// tornFracs rotates across crashes: a half-written frame (the torn
// tail replay must truncate), a zero-byte tear (nothing reached the
// device), and a fully-written frame the writer never saw acknowledged
// (replay must apply it; the driver's re-issue is then idempotent).
var tornFracs = []float64{0.5, 0, 1.0}

// shadow is the reference model the store must match after every
// recovery.
type shadow map[uint64][]byte

func (sh shadow) write(file uint64, off int64, data []byte) {
	o := sh[file]
	if end := off + int64(len(data)); int64(len(o)) < end {
		grown := make([]byte, end)
		copy(grown, o)
		o = grown
	}
	copy(o[off:], data)
	sh[file] = o
}

// op derives the i-th write of the canned workload from the seed:
// object, offset, length, and content are all pure functions of
// (seed, i).
func op(seed uint64, i int) (file uint64, off int64, data []byte) {
	x := faults.Mix64(seed ^ uint64(i))
	file = x % objects
	off = int64((x >> 8) % offsetSpan)
	n := 64 + int((x>>32)%uint64(maxWriteLen-64))
	data = make([]byte, n)
	for j := range data {
		data[j] = byte(faults.Mix64(x+uint64(j>>3)) >> uint(8*(j&7)))
	}
	return file, off, data
}

// verify checks every shadow object byte-for-byte, plus zero-fill past
// its end, and returns the total bytes compared.
func verify(s *logstore.LogStore, sh shadow, where string) int64 {
	var total int64
	for file := uint64(0); file < objects; file++ {
		want := sh[file]
		size, err := s.Size(file)
		if err != nil {
			log.Fatalf("logstore-chaos: %s: Size(%d): %v", where, file, err)
		}
		if size != int64(len(want)) {
			log.Fatalf("logstore-chaos: %s: object %d size %d, want %d", where, file, size, len(want))
		}
		got := make([]byte, len(want)+64)
		if err := s.ReadAt(file, 0, got); err != nil {
			log.Fatalf("logstore-chaos: %s: ReadAt(%d): %v", where, file, err)
		}
		if !bytes.Equal(got[:len(want)], want) {
			log.Fatalf("logstore-chaos: %s: object %d DIVERGED from shadow — acknowledged data lost", where, file)
		}
		if !bytes.Equal(got[len(want):], make([]byte, 64)) {
			log.Fatalf("logstore-chaos: %s: object %d not zero-filled past EOF", where, file)
		}
		total += int64(len(want))
	}
	return total
}

// kResult is one K's deterministic outcome line.
type kResult struct {
	k                  int
	crashes            int64
	replays            int64
	truncatedTails     int64
	replayedRecords    int64
	checkpoints        int64
	compactions        int64
	verifiedBytes      int64
	finalLogBytes      int64
	finalLiveBytes     int64
	acknowledgedWrites int64
}

// runK drives the full workload at kill interval k and returns the
// accumulated recovery counters.
func runK(dir string, seed uint64, ops, k int) kResult {
	cfg := logstore.Config{
		NoCompactor:     true, // compaction at deterministic op indices instead
		CheckpointBytes: 4096, // small, so suffix replays past periodic checkpoints happen
	}
	s, err := logstore.Open(dir, cfg)
	if err != nil {
		log.Fatal(err)
	}
	sh := shadow{}
	res := kResult{k: k}
	accumulate := func(st logstore.Stats) {
		res.replays += st.Replays
		res.truncatedTails += st.TruncatedTails
		res.replayedRecords += st.ReplayedRecords
		res.checkpoints += st.Checkpoints
		res.compactions += st.CompactionRuns
		res.acknowledgedWrites += st.Appends
	}
	arm := func() { s.CrashAppend(int64(k), tornFracs[res.crashes%int64(len(tornFracs))]) }
	arm()
	for i := 0; i < ops; i++ {
		file, off, data := op(seed, i)
		for {
			err := s.WriteAt(file, off, data)
			if err == nil {
				sh.write(file, off, data)
				break
			}
			if err != logstore.ErrCrashed {
				log.Fatalf("logstore-chaos: write %d: %v", i, err)
			}
			// The simulated kill fired mid-append. A fully-written frame
			// (frac 1.0) is durable even though the writer got no ack —
			// replay applies it, and the re-issue below rewrites the same
			// bytes (idempotence). Torn frames must vanish.
			frac := tornFracs[res.crashes%int64(len(tornFracs))]
			if frac >= 1.0 {
				sh.write(file, off, data)
			}
			res.crashes++
			accumulate(s.Stats())
			if err := s.Close(); err != nil {
				log.Fatalf("logstore-chaos: close after crash: %v", err)
			}
			s, err = logstore.Open(dir, cfg)
			if err != nil {
				log.Fatalf("logstore-chaos: reopen after crash %d: %v", res.crashes, err)
			}
			res.verifiedBytes += verify(s, sh, fmt.Sprintf("K=%d crash=%d", k, res.crashes))
			arm()
		}
		if (i+1)%compactEach == 0 {
			if err := s.Compact(); err != nil {
				log.Fatalf("logstore-chaos: compact at op %d: %v", i, err)
			}
		}
	}
	s.CrashAppend(0, 0) // disarm before the clean close
	res.verifiedBytes += verify(s, sh, fmt.Sprintf("K=%d final", k))
	st := s.Stats()
	res.finalLogBytes, res.finalLiveBytes = st.LogBytes, st.LiveBytes
	accumulate(st)
	if err := s.Close(); err != nil {
		log.Fatalf("logstore-chaos: final close: %v", err)
	}
	// One last cold reopen: the cleanly-closed store must come back
	// byte-identical too.
	s, err = logstore.Open(dir, cfg)
	if err != nil {
		log.Fatalf("logstore-chaos: cold reopen: %v", err)
	}
	res.verifiedBytes += verify(s, sh, fmt.Sprintf("K=%d cold-reopen", k))
	if err := s.Close(); err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	ops := flag.Int("ops", 80, "writes per K in the canned workload")
	seed := flag.Uint64("seed", 42, "workload seed (content, offsets, sizes)")
	ks := flag.String("ks", "3,5,7,13", "comma-separated kill intervals: crash on every Kth record append")
	dir := flag.String("dir", "", "working directory (default: a fresh temp dir, removed afterwards)")
	flag.Parse()

	root := *dir
	if root == "" {
		var err error
		root, err = os.MkdirTemp("", "logstore-chaos-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(root)
	}

	var results []kResult
	for _, part := range strings.Split(*ks, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || k < 1 {
			log.Fatalf("logstore-chaos: bad -ks entry %q", part)
		}
		kdir := filepath.Join(root, fmt.Sprintf("k%d", k))
		if err := os.RemoveAll(kdir); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("K=%d: killing on every %dth append over %d ops\n", k, k, *ops)
		results = append(results, runK(kdir, *seed, *ops, k))
	}

	// The summary is the reproducibility contract: every number below is
	// a pure function of (seed, ops, ks), so two runs diff clean.
	fmt.Println("\nRECOVERY SUMMARY")
	fmt.Printf("seed: %d ops: %d\n", *seed, *ops)
	var totalTorn, totalCrashes int64
	for _, r := range results {
		fmt.Printf("K=%d crashes=%d replays=%d truncated_tails=%d replayed_records=%d checkpoints=%d compactions=%d acked_writes=%d verified_bytes=%d log_bytes=%d live_bytes=%d\n",
			r.k, r.crashes, r.replays, r.truncatedTails, r.replayedRecords,
			r.checkpoints, r.compactions, r.acknowledgedWrites, r.verifiedBytes,
			r.finalLogBytes, r.finalLiveBytes)
		totalTorn += r.truncatedTails
		totalCrashes += r.crashes
	}
	fmt.Printf("total: crashes=%d truncated_tails=%d\n", totalCrashes, totalTorn)
	if totalCrashes == 0 {
		log.Fatal("logstore-chaos: the sweep never crashed — K too large for the workload")
	}
	if totalTorn == 0 {
		log.Fatal("logstore-chaos: the sweep never tore a tail — torn-frame recovery went unexercised")
	}
	fmt.Println("logstore-chaos: completed, zero data loss across all kills")
}
