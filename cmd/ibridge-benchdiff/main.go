// Command ibridge-benchdiff turns `go test -bench` output into a
// committed benchmark artifact and gates regressions between artifacts.
//
// Emit mode parses benchmark text from stdin, optionally times a
// full-evaluation command, and writes a BENCH_<pr>.json snapshot:
//
//	go test -run '^$' -bench BenchmarkPfsnet -benchmem ./internal/pfsnet/ |
//	    ibridge-benchdiff -emit -pr 6 -wallcmd 'go run ./cmd/ibridge-bench -exp all -scale smoke' > BENCH_6.json
//
// Compare mode loads two or more committed snapshots, orders them by PR
// number, and fails (exit 1) when the newest regresses more than the
// threshold against its predecessor on any shared metric:
//
//	ibridge-benchdiff -compare -threshold 5 BENCH_5.json BENCH_6.json
//
// Two thresholds apply: -threshold gates the deterministic metrics
// (allocs/op, which reproduce exactly across machines), and
// -noise-threshold gates the timing-bound ones (ns/op, MB/s, B/op —
// which includes timing-dependent pool reuse — and the full-eval wall
// clock). Shared CI hosts swing timing metrics ±30% run to run with
// zero code change, so the timing gate is a catastrophe detector while
// the alloc gate stays tight.
//
// With fewer than two snapshots compare mode prints a notice and exits
// 0, so the CI step is a no-op until the trajectory has two points.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// snapshot is the committed artifact schema. Benchmarks maps the
// benchmark name (minus the "Benchmark" prefix and -cpu suffix) to its
// parsed metrics keyed by unit (ns/op, MB/s, B/op, allocs/op).
type snapshot struct {
	PR         int                           `json:"pr"`
	GoVersion  string                        `json:"go"`
	GOMAXPROCS int                           `json:"gomaxprocs"`
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
	WallClockS float64                       `json:"wall_clock_s,omitempty"`
	WallCmd    string                        `json:"wall_cmd,omitempty"`
}

// higherIsBetter classifies metric direction; everything else (ns/op,
// B/op, allocs/op, wall_clock_s) regresses when it grows.
func higherIsBetter(unit string) bool {
	return unit == "MB/s"
}

func main() {
	var (
		emit      = flag.Bool("emit", false, "parse `go test -bench` output on stdin and write a JSON snapshot to stdout")
		compare   = flag.Bool("compare", false, "compare BENCH_*.json snapshots given as arguments")
		pr        = flag.Int("pr", 0, "PR number recorded in the emitted snapshot")
		wallCmd   = flag.String("wallcmd", "", "emit: command to run and time as the full-eval wall clock")
		threshold = flag.Float64("threshold", 5, "compare: allowed regression percentage for deterministic metrics (allocs/op)")
		noise     = flag.Float64("noise-threshold", 40, "compare: allowed regression percentage for timing-bound metrics (ns/op, MB/s, B/op, wall clock)")
	)
	flag.Parse()

	switch {
	case *emit == *compare:
		fmt.Fprintln(os.Stderr, "ibridge-benchdiff: exactly one of -emit or -compare required")
		os.Exit(2)
	case *emit:
		if err := runEmit(*pr, *wallCmd); err != nil {
			fmt.Fprintln(os.Stderr, "ibridge-benchdiff:", err)
			os.Exit(1)
		}
	default:
		if err := runCompare(flag.Args(), *threshold, *noise); err != nil {
			fmt.Fprintln(os.Stderr, "ibridge-benchdiff:", err)
			os.Exit(1)
		}
	}
}

func runEmit(pr int, wallCmd string) error {
	if pr <= 0 {
		return fmt.Errorf("-emit requires -pr N")
	}
	snap := snapshot{
		PR:         pr,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: map[string]map[string]float64{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, metrics, ok := parseBenchLine(sc.Text())
		if ok {
			snap.Benchmarks[name] = metrics
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("no Benchmark lines found on stdin")
	}
	if wallCmd != "" {
		cmd := exec.Command("sh", "-c", wallCmd)
		cmd.Stdout = os.Stderr // keep stdout clean for the JSON artifact
		cmd.Stderr = os.Stderr
		start := time.Now()
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("wallcmd %q: %w", wallCmd, err)
		}
		snap.WallClockS = round2(time.Since(start).Seconds())
		snap.WallCmd = wallCmd
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// parseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkPfsnetSmallSubreqs-4  345530  7095 ns/op  144.33 MB/s  514 B/op  11 allocs/op
//
// returning the trimmed name and its unit→value metrics.
func parseBenchLine(line string) (string, map[string]float64, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", nil, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// -N GOMAXPROCS suffix; absent when GOMAXPROCS=1.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if _, err := strconv.Atoi(f[1]); err != nil {
		return "", nil, false // second field must be the iteration count
	}
	metrics := map[string]float64{}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", nil, false
		}
		metrics[f[i+1]] = v
	}
	if len(metrics) == 0 {
		return "", nil, false
	}
	return name, metrics, true
}

// metricThreshold picks the gate for one metric: allocs/op is exactly
// reproducible and gets the tight threshold; timing-bound metrics get
// the loose noise threshold.
func metricThreshold(unit string, threshold, noise float64) float64 {
	if unit == "allocs/op" {
		return threshold
	}
	return noise
}

func runCompare(paths []string, threshold, noise float64) error {
	var snaps []snapshot
	for _, p := range paths {
		// An unexpanded BENCH_*.json glob means no snapshots exist yet.
		if strings.ContainsAny(p, "*?[") {
			continue
		}
		b, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		var s snapshot
		if err := json.Unmarshal(b, &s); err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		if s.PR <= 0 || len(s.Benchmarks) == 0 {
			return fmt.Errorf("%s: missing pr or benchmarks", p)
		}
		snaps = append(snaps, s)
	}
	if len(snaps) < 2 {
		fmt.Println("bench-check: fewer than two snapshots; nothing to compare")
		return nil
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].PR < snaps[j].PR })
	prev, cur := snaps[len(snaps)-2], snaps[len(snaps)-1]
	fmt.Printf("bench-check: PR %d vs PR %d (allocs threshold %.1f%%, timing threshold %.1f%%)\n", cur.PR, prev.PR, threshold, noise)

	var failed bool
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base, ok := prev.Benchmarks[name]
		if !ok {
			fmt.Printf("  %-28s new benchmark, no baseline\n", name)
			continue
		}
		units := make([]string, 0, len(cur.Benchmarks[name]))
		for u := range cur.Benchmarks[name] {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, unit := range units {
			bv, ok := base[unit]
			if !ok || bv == 0 {
				continue
			}
			cv := cur.Benchmarks[name][unit]
			delta := (cv - bv) / bv * 100
			worse := delta
			if higherIsBetter(unit) {
				worse = -delta
			}
			status := "ok"
			if worse > metricThreshold(unit, threshold, noise) {
				status = "REGRESSION"
				failed = true
			}
			fmt.Printf("  %-28s %-9s %12.2f -> %12.2f  %+7.1f%%  %s\n",
				name, unit, bv, cv, delta, status)
		}
	}
	if prev.WallClockS > 0 && cur.WallClockS > 0 {
		delta := (cur.WallClockS - prev.WallClockS) / prev.WallClockS * 100
		status := "ok"
		if delta > noise {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("  %-28s %-9s %12.2f -> %12.2f  %+7.1f%%  %s\n",
			"full-eval", "s", prev.WallClockS, cur.WallClockS, delta, status)
	}
	if failed {
		return fmt.Errorf("regression beyond threshold (see table above)")
	}
	fmt.Println("bench-check: within threshold")
	return nil
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}
