// ibridge-vet is the repo's invariant multichecker: it runs the custom
// static analyzers in internal/analyzers (detclock, detmaprange,
// obsnil, lockio) over the module and exits non-zero on findings.
//
// Usage:
//
//	ibridge-vet [-run detclock,lockio] [patterns...]
//
// Patterns default to ./... and are resolved against the enclosing
// module root. Findings can be suppressed site-by-site with a
// documented //lint:allow <analyzer> <reason> comment.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analyzers"
)

func main() {
	run := flag.String("run", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	as, err := analyzers.ByName(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibridge-vet:", err)
		os.Exit(2)
	}
	n, err := analyzers.Vet(".", flag.Args(), as, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibridge-vet:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "ibridge-vet: %d finding(s)\n", n)
		os.Exit(1)
	}
}
