// ibridge-vet is the repo's invariant multichecker: it runs the custom
// static analyzers in internal/analyzers (detclock, detmaprange,
// obsnil, lockio, bufown, atomicmix, lockorder, gospawn, featgate)
// over the module and exits non-zero on findings.
//
// Usage:
//
//	ibridge-vet [-run detclock,lockio] [-json] [patterns...]
//
// Patterns default to ./... and are resolved against the enclosing
// module root. Findings can be suppressed site-by-site with a
// documented //lint:allow <analyzer> <reason> comment; a directive
// that suppresses nothing is itself reported as stale. -json emits the
// findings as a JSON array ({file, line, col, analyzer, message}) for
// tooling; the default text form (file:line:col: [analyzer] message)
// is what the CI problem matcher annotates PR diffs with.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analyzers"
)

func main() {
	run := flag.String("run", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array instead of text")
	flag.Parse()

	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	as, err := analyzers.ByName(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibridge-vet:", err)
		os.Exit(2)
	}
	vet := analyzers.Vet
	if *asJSON {
		vet = analyzers.VetJSON
	}
	n, err := vet(".", flag.Args(), as, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibridge-vet:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "ibridge-vet: %d finding(s)\n", n)
		os.Exit(1)
	}
}
